"""Analytical performance model tests."""

import pytest

from repro.hwsim.kernels import KernelConfig, default_config, enumerate_configs
from repro.hwsim.library import library_config
from repro.hwsim.machine import AMD_2990WX, INTEL_4790K
from repro.hwsim.perf_model import (
    achieved_gflops,
    execution_breakdown,
    execution_time_seconds,
    roofline_bound_gflops,
    workload_bytes,
)
from repro.hwsim.workload import ConvWorkload

RESNET_MID_LAYER = ConvWorkload(1, 128, 128, 28, 28, kernel_size=3, stride=1, padding=1)
RESNET_EARLY_LAYER = ConvWorkload(1, 64, 64, 56, 56, kernel_size=3, stride=1, padding=1)
DEPTHWISE_LAYER = ConvWorkload(1, 96, 96, 28, 28, kernel_size=3, stride=1, padding=1, groups=96)


def good_config(machine, workload):
    return KernelConfig(
        tile_oc=16, tile_oh=1, tile_ow=min(14, workload.out_width),
        vector_lanes=machine.simd_lanes, unroll=4, threads=machine.inference_threads,
        vectorize="channels",
    )


class TestKernelConfigSpace:
    def test_enumeration_respects_workload_extents(self):
        configs = enumerate_configs(RESNET_MID_LAYER, threads=4, vector_lanes=8)
        assert configs
        assert all(c.tile_ow <= RESNET_MID_LAYER.out_width for c in configs)
        assert all(c.tile_oc <= RESNET_MID_LAYER.out_channels for c in configs)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            KernelConfig(0, 1, 1, 8, 1, 1)
        with pytest.raises(ValueError):
            KernelConfig(1, 1, 1, 8, 1, 1, vectorize="rows")

    def test_default_config_is_legal(self):
        config = default_config(RESNET_MID_LAYER, threads=4, vector_lanes=8)
        assert config.tile_ow <= RESNET_MID_LAYER.out_width


class TestExecutionModel:
    def test_time_is_positive_and_finite(self):
        config = good_config(INTEL_4790K, RESNET_MID_LAYER)
        seconds = execution_time_seconds(RESNET_MID_LAYER, config, INTEL_4790K)
        assert 0 < seconds < 1.0

    def test_breakdown_components_sum(self):
        config = good_config(INTEL_4790K, RESNET_MID_LAYER)
        breakdown = execution_breakdown(RESNET_MID_LAYER, config, INTEL_4790K)
        assert breakdown.total_seconds == pytest.approx(
            max(breakdown.compute_seconds, breakdown.memory_seconds)
            + breakdown.overhead_seconds
        )

    def test_achieved_gflops_below_peak(self):
        config = good_config(INTEL_4790K, RESNET_MID_LAYER)
        assert achieved_gflops(RESNET_MID_LAYER, config, INTEL_4790K) < INTEL_4790K.peak_gflops

    def test_more_cores_help_large_layers(self):
        config_intel = good_config(INTEL_4790K, RESNET_EARLY_LAYER)
        config_amd = good_config(AMD_2990WX, RESNET_EARLY_LAYER)
        assert execution_time_seconds(
            RESNET_EARLY_LAYER, config_amd, AMD_2990WX
        ) < execution_time_seconds(RESNET_EARLY_LAYER, config_intel, INTEL_4790K)

    def test_mismatched_tiles_are_slower(self):
        """A schedule whose tiles do not divide the output must lose to one that does."""
        matched = KernelConfig(16, 1, 14, 8, 4, 4, vectorize="channels")
        mismatched = KernelConfig(16, 1, 16, 8, 4, 4, vectorize="channels")
        workload = ConvWorkload(1, 128, 128, 21, 21, 3, 1, 1)  # 21 % 14 == 7, 21 % 16 == 5
        assert execution_time_seconds(workload, matched, INTEL_4790K) < execution_time_seconds(
            workload, mismatched, INTEL_4790K
        )

    def test_depthwise_layers_run_at_lower_efficiency(self):
        config = good_config(INTEL_4790K, DEPTHWISE_LAYER)
        dense_equivalent = ConvWorkload(1, 96, 96, 28, 28, 3, 1, 1)
        dense_gflops = achieved_gflops(dense_equivalent, config, INTEL_4790K)
        depthwise_gflops = achieved_gflops(DEPTHWISE_LAYER, config, INTEL_4790K)
        assert depthwise_gflops < dense_gflops

    def test_too_many_threads_hurt_tiny_layers(self):
        tiny = ConvWorkload(1, 64, 64, 7, 7, kernel_size=1, stride=1, padding=0)
        few = KernelConfig(16, 1, 7, 8, 4, 4, vectorize="channels")
        many = KernelConfig(16, 1, 7, 8, 4, 32, vectorize="channels")
        assert execution_time_seconds(tiny, few, AMD_2990WX) < execution_time_seconds(
            tiny, many, AMD_2990WX
        )

    def test_workload_bytes(self):
        inputs, weights, outputs = workload_bytes(RESNET_MID_LAYER)
        assert inputs == 128 * 28 * 28 * 4
        assert weights == 128 * 128 * 9 * 4
        assert outputs == 128 * 28 * 28 * 4

    def test_roofline_bound_respects_peak(self):
        assert roofline_bound_gflops(RESNET_MID_LAYER, INTEL_4790K) <= INTEL_4790K.peak_gflops


class TestLibraryConfig:
    def test_library_uses_all_cores(self):
        config = library_config(RESNET_MID_LAYER, AMD_2990WX)
        assert config.threads == AMD_2990WX.inference_threads

    def test_library_tiles_never_exceed_extents(self):
        small = ConvWorkload(1, 512, 512, 4, 4, kernel_size=3, stride=1, padding=1)
        config = library_config(small, INTEL_4790K)
        assert config.tile_ow <= small.out_width

    def test_library_good_at_224_shapes(self):
        """At the 224-family extents the library should reach a decent fraction
        of the best-known schedule (that is the premise of the paper's §VI)."""
        from repro.hwsim.autotune import KernelTuner

        tuner = KernelTuner(INTEL_4790K, strategy="evolutionary", trials=200, seed=0)
        best = tuner.tune(RESNET_EARLY_LAYER).best_seconds
        library = execution_time_seconds(
            RESNET_EARLY_LAYER, library_config(RESNET_EARLY_LAYER, INTEL_4790K), INTEL_4790K
        )
        assert library <= 2.5 * best
