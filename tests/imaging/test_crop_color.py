"""Crop and color-conversion tests."""

import numpy as np
import pytest

from repro.imaging.color import rgb_to_grayscale, rgb_to_ycbcr, ycbcr_to_rgb
from repro.imaging.crop import center_crop, center_crop_ratio, crop, random_crop


class TestCrop:
    def test_crop_window_contents(self):
        image = np.arange(36, dtype=np.float64).reshape(6, 6)
        window = crop(image, top=1, left=2, height=3, width=2)
        np.testing.assert_array_equal(window, image[1:4, 2:4])

    def test_crop_out_of_bounds_rejected(self):
        image = np.zeros((4, 4))
        with pytest.raises(ValueError):
            crop(image, 2, 2, 3, 3)
        with pytest.raises(ValueError):
            crop(image, 0, 0, 0, 1)

    def test_crop_returns_copy(self):
        image = np.zeros((4, 4))
        window = crop(image, 0, 0, 2, 2)
        window[...] = 1.0
        assert image.sum() == 0.0

    def test_center_crop_is_centered(self):
        image = np.zeros((10, 10))
        image[4:6, 4:6] = 1.0
        window = center_crop(image, (2, 2))
        np.testing.assert_array_equal(window, np.ones((2, 2)))

    def test_center_crop_larger_than_image_clamps(self):
        image = np.ones((5, 7, 3))
        assert center_crop(image, (10, 10)).shape == (5, 7, 3)

    def test_center_crop_ratio_area(self):
        image = np.ones((100, 100, 3))
        out = center_crop_ratio(image, 0.25)
        area_ratio = out.shape[0] * out.shape[1] / (100 * 100)
        assert area_ratio == pytest.approx(0.25, abs=0.01)

    def test_center_crop_ratio_full_is_identity(self, sample_image):
        out = center_crop_ratio(sample_image, 1.0)
        np.testing.assert_array_equal(out, sample_image)

    def test_center_crop_ratio_rejects_invalid(self, sample_image):
        with pytest.raises(ValueError):
            center_crop_ratio(sample_image, 0.0)
        with pytest.raises(ValueError):
            center_crop_ratio(sample_image, 1.2)

    def test_random_crop_shape_and_bounds(self, sample_image):
        rng = np.random.default_rng(0)
        for _ in range(5):
            out = random_crop(sample_image, (32, 32), rng)
            assert out.shape == (32, 32, 3)

    def test_smaller_crop_magnifies_object(self):
        """Cropping tighter must increase the object's share of the frame
        (the scale mechanism of paper Fig 3)."""
        from repro.imaging.synthetic import SceneSpec, render_scene

        # Two scenes that differ only in the object's class share the same
        # background, so the pixels where they differ mark the object region.
        common = dict(object_scale=0.4, background_seed=5, noise_level=0.0)
        scene_a = render_scene(SceneSpec(class_id=0, **common), 128)
        scene_b = render_scene(SceneSpec(class_id=1, **common), 128)
        object_mask = (np.abs(scene_a - scene_b).sum(axis=-1) > 0.05).astype(np.float64)

        full_fraction = center_crop_ratio(object_mask[..., None], 1.0).mean()
        tight_fraction = center_crop_ratio(object_mask[..., None], 0.25).mean()
        assert tight_fraction > full_fraction


class TestColor:
    def test_ycbcr_roundtrip(self, sample_image):
        roundtrip = ycbcr_to_rgb(rgb_to_ycbcr(sample_image))
        np.testing.assert_allclose(roundtrip, sample_image, atol=1e-10)

    def test_gray_input_has_neutral_chroma(self):
        gray = np.full((8, 8, 3), 0.5)
        ycbcr = rgb_to_ycbcr(gray)
        np.testing.assert_allclose(ycbcr[..., 0], 0.5, atol=1e-12)
        np.testing.assert_allclose(ycbcr[..., 1:], 0.5, atol=1e-12)

    def test_luma_weights_sum_to_one(self):
        white = np.ones((2, 2, 3))
        np.testing.assert_allclose(rgb_to_ycbcr(white)[..., 0], 1.0, atol=1e-12)

    def test_grayscale_matches_luma(self, sample_image):
        np.testing.assert_allclose(
            rgb_to_grayscale(sample_image), rgb_to_ycbcr(sample_image)[..., 0], atol=1e-12
        )

    def test_grayscale_passthrough_for_2d(self):
        image = np.random.default_rng(0).random((5, 5))
        np.testing.assert_array_equal(rgb_to_grayscale(image), image)

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            rgb_to_ycbcr(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            ycbcr_to_rgb(np.zeros((4, 4, 4)))
