"""PSNR and SSIM tests."""

import numpy as np
import pytest

from repro.imaging.metrics import mse, psnr, ssim


class TestMSEAndPSNR:
    def test_identical_images(self, sample_image):
        assert mse(sample_image, sample_image) == 0.0
        assert psnr(sample_image, sample_image) == float("inf")

    def test_known_mse(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.5)
        assert mse(a, b) == pytest.approx(0.25)

    def test_psnr_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.1)
        assert psnr(a, b) == pytest.approx(20.0, abs=1e-9)

    def test_psnr_decreases_with_noise(self, sample_image, rng):
        small = np.clip(sample_image + rng.normal(0, 0.01, sample_image.shape), 0, 1)
        large = np.clip(sample_image + rng.normal(0, 0.10, sample_image.shape), 0, 1)
        assert psnr(sample_image, small) > psnr(sample_image, large)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((5, 5)))


class TestSSIM:
    def test_identical_images_score_one(self, sample_image):
        assert ssim(sample_image, sample_image) == pytest.approx(1.0)

    def test_range_and_monotonic_degradation(self, sample_image, rng):
        values = []
        for sigma in (0.02, 0.08, 0.2):
            noisy = np.clip(sample_image + rng.normal(0, sigma, sample_image.shape), 0, 1)
            values.append(ssim(sample_image, noisy))
        assert all(-1.0 <= v <= 1.0 for v in values)
        assert values[0] > values[1] > values[2]

    def test_symmetry(self, sample_image, rng):
        other = np.clip(sample_image + rng.normal(0, 0.05, sample_image.shape), 0, 1)
        assert ssim(sample_image, other) == pytest.approx(ssim(other, sample_image), abs=1e-9)

    def test_constant_shift_scores_high_but_below_one(self):
        a = np.tile(np.linspace(0, 1, 32), (32, 1))
        b = np.clip(a + 0.05, 0, 1)
        value = ssim(a, b)
        assert 0.7 < value < 1.0

    def test_structural_destruction_scores_low(self, rng):
        structured = np.tile(np.linspace(0, 1, 64), (64, 1))
        noise = rng.random((64, 64))
        assert ssim(structured, noise) < 0.3

    def test_tiny_image_does_not_crash(self):
        a = np.random.default_rng(0).random((4, 4))
        assert -1.0 <= ssim(a, a) <= 1.0

    def test_blur_scores_lower_than_original(self, sample_image):
        from scipy.ndimage import uniform_filter

        blurred = uniform_filter(sample_image, size=(7, 7, 1))
        assert ssim(sample_image, blurred) < 0.98

    def test_shape_mismatch_rejected(self, sample_image):
        with pytest.raises(ValueError):
            ssim(sample_image, sample_image[:-1])
