"""Resize tests."""

import numpy as np
import pytest

from repro.imaging.resize import resize, resize_shortest_side


@pytest.fixture
def gradient_image():
    """A smooth horizontal gradient: easy to validate interpolation against."""
    x = np.linspace(0.0, 1.0, 64)
    return np.tile(x, (32, 1))


class TestResizeBasics:
    @pytest.mark.parametrize("method", ["nearest", "bilinear", "bicubic"])
    def test_output_shape(self, gradient_image, method):
        out = resize(gradient_image, (16, 24), method=method)
        assert out.shape == (16, 24)

    @pytest.mark.parametrize("method", ["nearest", "bilinear", "bicubic"])
    def test_color_image_keeps_channels(self, sample_image, method):
        out = resize(sample_image, (48, 40), method=method)
        assert out.shape == (48, 40, 3)

    def test_same_size_is_copy(self, sample_image):
        out = resize(sample_image, sample_image.shape[:2])
        np.testing.assert_array_equal(out, sample_image)
        assert out is not sample_image

    def test_int_size_means_square(self, sample_image):
        assert resize(sample_image, 30).shape == (30, 30, 3)

    def test_rejects_bad_inputs(self, sample_image):
        with pytest.raises(ValueError):
            resize(sample_image, (0, 10))
        with pytest.raises(ValueError):
            resize(sample_image, (10, 10), method="lanczos")
        with pytest.raises(ValueError):
            resize(np.zeros((2, 2, 2, 2)), (4, 4))


class TestResizeValues:
    def test_constant_image_stays_constant(self):
        image = np.full((20, 20), 0.37)
        for method in ("nearest", "bilinear", "bicubic"):
            out = resize(image, (37, 11), method=method)
            np.testing.assert_allclose(out, 0.37, atol=1e-9)

    def test_bilinear_preserves_gradient_mean(self, gradient_image):
        out = resize(gradient_image, (16, 32), method="bilinear")
        assert out.mean() == pytest.approx(gradient_image.mean(), abs=0.01)

    def test_downsample_then_upsample_approximates_original(self, gradient_image):
        down = resize(gradient_image, (16, 32), method="bilinear")
        up = resize(down, gradient_image.shape[:2], method="bilinear")
        assert np.abs(up - gradient_image).mean() < 0.02

    def test_bicubic_does_not_overshoot_range(self):
        # A step edge is the classic ringing case; output must stay in range.
        image = np.zeros((16, 16))
        image[:, 8:] = 1.0
        out = resize(image, (33, 29), method="bicubic")
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_nearest_preserves_exact_values(self):
        image = np.random.default_rng(0).choice([0.0, 0.25, 0.5, 1.0], size=(10, 10))
        out = resize(image, (23, 17), method="nearest")
        assert set(np.unique(out)).issubset(set(np.unique(image)))


class TestShortestSide:
    def test_landscape_image(self):
        image = np.zeros((100, 200, 3))
        out = resize_shortest_side(image, 50)
        assert out.shape == (50, 100, 3)

    def test_portrait_image(self):
        image = np.zeros((200, 100, 3))
        out = resize_shortest_side(image, 50)
        assert out.shape == (100, 50, 3)

    def test_aspect_ratio_preserved(self):
        image = np.zeros((300, 450, 3))
        out = resize_shortest_side(image, 120)
        assert out.shape[1] / out.shape[0] == pytest.approx(1.5, abs=0.02)
