"""Synthetic scene generator and preprocessing tests."""

import numpy as np
import pytest

from repro.imaging.synthetic import SceneSpec, render_scene
from repro.imaging.transforms import (
    IMAGENET_MEAN,
    IMAGENET_STD,
    InferencePreprocessor,
    batch_to_model_input,
    to_model_input,
)


class TestSceneSpec:
    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            SceneSpec(class_id=0, object_scale=0.01)

    def test_rejects_bad_class(self):
        with pytest.raises(ValueError):
            SceneSpec(class_id=12, object_scale=0.5, num_classes=10)


class TestRenderScene:
    def test_output_shape_and_range(self):
        image = render_scene(SceneSpec(class_id=1, object_scale=0.5), 64)
        assert image.shape == (64, 64, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_deterministic_for_same_spec(self):
        spec = SceneSpec(class_id=3, object_scale=0.4, background_seed=9)
        np.testing.assert_array_equal(render_scene(spec, 48), render_scene(spec, 48))

    def test_different_classes_look_different(self):
        a = render_scene(SceneSpec(class_id=0, object_scale=0.5), 64)
        b = render_scene(SceneSpec(class_id=1, object_scale=0.5), 64)
        assert np.abs(a - b).mean() > 0.01

    def test_object_scale_controls_object_extent(self):
        def foreground_fraction(scale):
            image = render_scene(
                SceneSpec(class_id=0, object_scale=scale, noise_level=0.0), 96
            )
            background = render_scene(
                SceneSpec(class_id=0, object_scale=0.05, noise_level=0.0), 96
            )
            return float((np.abs(image - background).sum(axis=-1) > 0.1).mean())

        assert foreground_fraction(0.8) > foreground_fraction(0.3)

    def test_higher_resolution_adds_detail(self):
        """Rendering at higher resolution must reveal texture energy that a
        low-resolution render cannot represent (the paper's detail axis)."""
        from repro.imaging.resize import resize

        spec = SceneSpec(class_id=2, object_scale=0.6, texture_weight=0.9, noise_level=0.0)
        high = render_scene(spec, 192)
        low_upsampled = resize(render_scene(spec, 48), (192, 192), method="bilinear")
        # High-frequency residual energy of the true high-res render is larger.
        residual = np.abs(high - low_upsampled).mean()
        assert residual > 0.01

    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError):
            render_scene(SceneSpec(class_id=0, object_scale=0.5), 4)


class TestToModelInput:
    def test_shape_and_layout(self, sample_image):
        tensor = to_model_input(sample_image)
        assert tensor.shape == (1, 3, *sample_image.shape[:2])

    def test_normalization_applied(self):
        image = np.ones((8, 8, 3)) * IMAGENET_MEAN
        tensor = to_model_input(image)
        np.testing.assert_allclose(tensor, 0.0, atol=1e-12)

    def test_no_normalization_preserves_values(self, sample_image):
        tensor = to_model_input(sample_image, normalize=False)
        np.testing.assert_allclose(tensor[0].transpose(1, 2, 0), sample_image)

    def test_rejects_grayscale(self):
        with pytest.raises(ValueError):
            to_model_input(np.zeros((8, 8)))

    def test_batch_stacking(self, sample_image):
        batch = batch_to_model_input([sample_image, sample_image])
        assert batch.shape == (2, 3, *sample_image.shape[:2])


class TestInferencePreprocessor:
    def test_output_resolution(self, sample_image):
        preprocessor = InferencePreprocessor(crop_ratio=0.75)
        tensor = preprocessor(sample_image, 64)
        assert tensor.shape == (1, 3, 64, 64)

    def test_crop_ratio_changes_content(self, large_sample_image):
        tight = InferencePreprocessor(crop_ratio=0.25)
        full = InferencePreprocessor(crop_ratio=1.0)
        assert not np.allclose(
            tight(large_sample_image, 64), full(large_sample_image, 64)
        )

    def test_preprocess_hwc_returns_unnormalized_image(self, sample_image):
        preprocessor = InferencePreprocessor()
        hwc = preprocessor.preprocess_hwc(sample_image, 48)
        assert hwc.shape == (48, 48, 3)
        assert hwc.min() >= 0.0 and hwc.max() <= 1.0

    def test_normalization_statistics(self, sample_image):
        preprocessor = InferencePreprocessor(normalize=True)
        tensor = preprocessor(sample_image, 32)
        manual = (preprocessor.preprocess_hwc(sample_image, 32) - IMAGENET_MEAN) / IMAGENET_STD
        np.testing.assert_allclose(tensor[0], manual.transpose(2, 0, 1))
