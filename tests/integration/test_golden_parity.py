"""Golden-parity differential harness for the example configurations.

Every config under ``examples/configs`` that produces a report has its
canonical ``--json`` output committed under ``tests/golden``; these tests
re-run each config through the :class:`~repro.api.engine.Engine` and
byte-compare against the pinned file.  This is the refactor gate for the
event-loop fast core: the vectorized path (``fast_core`` on, the default)
and the original scalar path (``fast_core`` off) must both reproduce the
goldens exactly — any drift in a simulated value, a float reduction order,
or the JSON encoding fails here with the first divergent report key named.

To intentionally re-pin after a behaviour change::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_parity.py \
        --update-golden

then review the resulting ``tests/golden`` diff before committing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import Engine

REPO_ROOT = Path(__file__).resolve().parents[2]
CONFIG_DIR = REPO_ROOT / "examples" / "configs"
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: Configs whose report comes from ``run_experiment`` (no serving section).
EXPERIMENT_CONFIGS = ("fig2", "table1")
#: Configs whose report comes from ``serve`` (these exercise the fast core).
SERVING_CONFIGS = (
    "serving_admission",
    "serving_autoscale",
    "serving_bursty",
    "serving_chaos",
    "serving_diurnal",
    "serving_prefetch",
    "serving_replay",
    "serving_sharded",
)
ALL_CONFIGS = EXPERIMENT_CONFIGS + SERVING_CONFIGS


def _render(name: str, fast_core: bool | None = None) -> str:
    """One config's canonical report text (``to_json`` plus newline)."""
    data = json.loads((CONFIG_DIR / f"{name}.json").read_text())
    if fast_core is not None:
        data["serving"]["fast_core"] = fast_core
    engine = Engine(EngineConfig.from_dict(data))
    if name in EXPERIMENT_CONFIGS:
        report = engine.run_experiment()
    else:
        report = engine.serve()
    return report.to_json() + "\n"


def _first_divergence(expected, actual, path: str = "$") -> str:
    """The path of the first differing key between two decoded reports."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                return f"{path}.{key} (unexpected key)"
            if key not in actual:
                return f"{path}.{key} (missing key)"
            if expected[key] != actual[key]:
                return _first_divergence(expected[key], actual[key], f"{path}.{key}")
        return f"{path} (dicts equal but text differs)"
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return f"{path} (length {len(expected)} != {len(actual)})"
        for index, (left, right) in enumerate(zip(expected, actual)):
            if left != right:
                return _first_divergence(left, right, f"{path}[{index}]")
        return f"{path} (lists equal but text differs)"
    return f"{path}: expected {expected!r}, got {actual!r}"


def _assert_matches_golden(name: str, text: str, label: str) -> None:
    golden_path = GOLDEN_DIR / f"{name}.json"
    expected = golden_path.read_text()
    if text == expected:
        return
    divergence = _first_divergence(json.loads(expected), json.loads(text))
    pytest.fail(
        f"{name} ({label}) diverged from {golden_path.relative_to(REPO_ROOT)}\n"
        f"first divergent key: {divergence}\n"
        "If the change is intentional, re-pin with --update-golden and "
        "review the diff."
    )


@pytest.mark.parametrize("name", ALL_CONFIGS)
def test_report_matches_golden(name: str, update_golden: bool) -> None:
    """The default (fast-core) path reproduces the pinned report exactly."""
    text = _render(name)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        (GOLDEN_DIR / f"{name}.json").write_text(text)
        return
    _assert_matches_golden(name, text, "fast core")


@pytest.mark.parametrize("name", SERVING_CONFIGS)
def test_scalar_path_matches_golden(name: str, update_golden: bool) -> None:
    """The differential scalar path (``fast_core`` off) agrees byte-for-byte.

    Together with ``test_report_matches_golden`` this pins the two event
    loops to each other *and* to the committed artifact, so a regression in
    either path cannot hide behind the other.
    """
    if update_golden:
        pytest.skip("goldens are pinned from the default path")
    _assert_matches_golden(name, _render(name, fast_core=False), "scalar path")


def test_every_golden_has_a_config() -> None:
    """No stale golden files: each pinned report maps to a live config."""
    pinned = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert pinned == set(ALL_CONFIGS)


@pytest.mark.parametrize("fast_core", [True, False], ids=["fast", "scalar"])
def test_disabled_elastic_sections_match_the_static_golden(fast_core: bool) -> None:
    """Elastic sections configured but *disabled* are byte-invisible.

    ``replicas: 1``, ``autoscale.name: "none"`` and ``faults: []`` must
    leave the run on the static ``ShardedFleet`` path — the report is
    byte-identical to the pinned ``serving_sharded`` golden, which is the
    differential gate that the elastic layer cannot perturb existing
    configs.
    """
    data = json.loads((CONFIG_DIR / "serving_sharded.json").read_text())
    fleet = data["serving"]["fleet"]
    fleet["replicas"] = 1
    fleet["autoscale"] = {"name": "none"}
    fleet["faults"] = []
    data["serving"]["fast_core"] = fast_core
    report = Engine(EngineConfig.from_dict(data)).serve()
    assert report.kind == "fleet"  # not elastic-fleet: the static path ran
    expected = (GOLDEN_DIR / "serving_sharded.json").read_text()
    assert report.to_json() + "\n" == expected
