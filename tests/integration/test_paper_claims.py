"""Integration tests checking the paper's headline claims end to end.

Each test reproduces (a scaled-down version of) one of the paper's claims
using the same builders the benchmark harness uses.  Absolute values are
surrogate/model estimates; the asserted facts are the claims' *shapes*.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    build_dynamic_point,
    build_fig7_series,
    build_read_savings_table,
    build_table2_rows,
    speedup_summary,
)
from repro.hwsim.machine import AMD_2990WX, INTEL_4790K
from repro.surrogate.anchors import RESOLUTIONS
from repro.surrogate.static_accuracy import StaticAccuracyModel


class TestKernelTuningClaims:
    """§VII.a and the second bullet of the contributions list."""

    @pytest.fixture(scope="class")
    def table2(self):
        return build_table2_rows(
            (INTEL_4790K, AMD_2990WX), resolutions=(112, 224, 280, 448), tuning_trials=64
        )

    def test_tuned_280_faster_than_library_224(self, table2):
        """Headline: tuned inference at 280 is 1.2x-1.7x faster than the
        library at 224 (we accept anywhere in/above that band)."""
        for machine_name in ("4790K", "2990WX"):
            summary = speedup_summary(table2[machine_name])
            assert summary["tuned280_vs_library224"] >= 1.15

    def test_tuning_realizes_more_of_the_ideal_speedup(self, table2):
        """§VII.a: from 448 to 112 the ideal speedup is ~16x; the library only
        realizes a fraction of it, tuning realizes much more."""
        for machine_name in ("4790K", "2990WX"):
            summary = speedup_summary(table2[machine_name])
            assert summary["library_speedup"] < summary["tuned_speedup"] <= 16.5
            assert summary["tuned_speedup"] > 0.3 * summary["ideal_speedup"]

    def test_intel_realizes_more_speedup_than_amd(self, table2):
        """The 32-core part cannot be filled by low-resolution layers, so its
        realized speedup is lower (paper: 9.4/11.4 vs 7.7/6.7)."""
        intel = speedup_summary(table2["4790K"])["tuned_speedup"]
        amd = speedup_summary(table2["2990WX"])["tuned_speedup"]
        assert amd < intel

    def test_tuned_throughput_higher_everywhere(self):
        series = build_fig7_series(
            "resnet50", AMD_2990WX, resolutions=(112, 224, 448), tuning_trials=64
        )
        for resolution in (112, 224, 448):
            assert series["tuned"][resolution] > series["library"][resolution]


class TestStorageClaims:
    """§VII.b storage calibration and the 20-30% read savings claim."""

    @pytest.fixture(scope="class")
    def cars_table(self):
        return build_read_savings_table(
            "cars", "resnet50", crop_ratios=(0.75,), resolutions=(112, 224, 448),
            num_images=6, oracle_images=400,
        )

    @pytest.fixture(scope="class")
    def imagenet_table(self):
        return build_read_savings_table(
            "imagenet", "resnet18", crop_ratios=(0.75,), resolutions=(112, 224, 448),
            num_images=6, oracle_images=400,
        )

    def test_twenty_to_thirty_percent_savings_available(self, cars_table, imagenet_table):
        """Headline: 20-30% of image data can be ignored without losing accuracy."""
        best_savings = max(
            row.read_savings_percent for row in cars_table + imagenet_table
        )
        assert best_savings >= 20.0

    def test_accuracy_loss_stays_within_budget(self, cars_table, imagenet_table):
        for row in cars_table + imagenet_table:
            if row.resolution == "dynamic":
                continue
            loss = row.default_accuracy[0.75] - row.calibrated_accuracy[0.75]
            assert loss <= 0.5  # paper highlights losses above 0.1%; hard-fail at 0.5

    def test_cars_saves_more_than_imagenet(self, cars_table, imagenet_table):
        """Table IV vs Table III: the shape-dominant dataset saves much more."""
        cars_mean = np.mean([row.read_savings_percent for row in cars_table])
        imagenet_mean = np.mean([row.read_savings_percent for row in imagenet_table])
        assert cars_mean >= imagenet_mean


class TestDynamicResolutionClaims:
    """§VII.b accuracy-vs-FLOPs and the robustness-to-crop claim."""

    def test_dynamic_tracks_best_static_across_crops(self):
        """The dynamic pipeline must stay near the apex of every static curve
        without knowing the crop in advance — the paper's alternative to
        fine-tuning for a known object-scale distribution."""
        from repro.analysis.experiments import model_gflops, scale_model_gflops

        static = StaticAccuracyModel("imagenet", "resnet18")
        for crop in (0.25, 0.56, 0.75):
            dynamic = build_dynamic_point(
                "imagenet", "resnet18", crop, num_images=800, seed=0
            )
            best_resolution, best_accuracy = static.best_static(crop)
            assert dynamic.accuracy >= best_accuracy - 2.0
            # And it must not cost more than always running the apex resolution.
            apex_cost = model_gflops("resnet18", best_resolution) + scale_model_gflops()
            assert dynamic.gflops <= apex_cost + 1e-9

    def test_static_baseline_is_crop_sensitive(self):
        """Without dynamic resolution, the best fixed resolution changes a lot
        with crop size (the problem the paper sets up in Fig 3/Table I)."""
        static = StaticAccuracyModel("cars", "resnet18")
        best_small, _ = static.best_static(0.25)
        best_large, _ = static.best_static(0.75)
        assert best_small <= 224 < best_large or best_small < best_large

    def test_scale_model_overhead_is_small(self):
        """§VII.c: the scale model adds only a small fraction of backbone cost."""
        from repro.analysis.experiments import model_gflops, scale_model_gflops

        overhead = scale_model_gflops() / model_gflops("resnet50", 224)
        assert overhead < 0.05

    def test_dynamic_pipeline_spreads_choices(self):
        point = build_dynamic_point("cars", "resnet18", 0.56, num_images=600, seed=3)
        assert len(point.resolution_histogram) >= 3
        assert sum(point.resolution_histogram.values()) == 600
