"""True positive: an ArrivalProcess overriding only half the pair."""

from repro.serving.arrivals import ArrivalProcess


class HalfArrivals(ArrivalProcess):
    """Overrides trace() only; stream() falls back to a different path."""

    def trace(self, keys, num_requests):
        return []
