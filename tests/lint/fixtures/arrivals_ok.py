"""Near misses: a full pair, and a pure wrapper overriding neither."""

from repro.serving.arrivals import ArrivalProcess


class PairedArrivals(ArrivalProcess):
    """Overrides both halves: the pair stays together."""

    def trace(self, keys, num_requests):
        return []

    def stream(self, keys, num_requests):
        return []


class WrapperArrivals(ArrivalProcess):
    """Overrides neither: inherits a consistent pair."""

    label = "wrapper"
