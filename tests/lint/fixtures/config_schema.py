"""A miniature config schema for the example-config validation fixtures."""

from dataclasses import dataclass, field


@dataclass
class CacheConfig:
    """Cache section."""

    capacity_bytes: int = 1000
    policy: str = "lru"


@dataclass
class ServingConfig:
    """Serving section."""

    num_requests: int = 100
    cache: CacheConfig | None = None
    options: dict = field(default_factory=dict)


@dataclass
class SweepConfig:
    """Sweep section (legacy bare-grid form allowed)."""

    workers: int = 1
    grid: dict = field(default_factory=dict)


@dataclass
class EngineConfig:
    """Root config every example file must validate against."""

    seed: int = 0
    serving: ServingConfig | None = None
    sweep: "SweepConfig | None" = None
