"""True positive: a fold that silently ignores one event type."""

from repro.serving.events import PingEvent


class MetricsCollector:
    """Handles PingEvent; PongEvent is invisible."""

    def on_event(self, event):
        if isinstance(event, PingEvent):
            self.pings = getattr(self, "pings", 0) + 1
