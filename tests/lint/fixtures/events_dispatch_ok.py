"""Near miss: an explicit isinstance ignore branch counts as handling."""

from repro.serving.events import PingEvent, PongEvent


class MetricsCollector:
    """Handles PingEvent, explicitly ignores PongEvent."""

    def on_event(self, event):
        if isinstance(event, PingEvent):
            self.pings = getattr(self, "pings", 0) + 1
        elif isinstance(event, PongEvent):
            return
