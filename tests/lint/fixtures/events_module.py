"""A miniature frozen event hierarchy for the dispatch-rule fixtures."""

from dataclasses import dataclass


class ServerEvent:
    """Base event."""


@dataclass(frozen=True)
class PingEvent(ServerEvent):
    """First event type."""

    time: float


@dataclass(frozen=True)
class PongEvent(ServerEvent):
    """Second event type."""

    time: float
