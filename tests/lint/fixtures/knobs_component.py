"""A registered component whose knobs the committed reference must list."""

from repro.api.registry import WIDGETS


@WIDGETS.register("widget")
class Widget:
    """A toy registered component with two constructor knobs."""

    def __init__(self, size, rate=1.0):
        self.size = size
        self.rate = rate
