"""Near miss: plain-call registration has no constructor contract to lint."""

from repro.api.registry import WIDGETS


class Preset:
    """A preset instance registered by call, not by decorator."""


WIDGETS.register("preset", Preset())
