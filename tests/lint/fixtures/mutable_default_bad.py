"""True positive: default containers shared by every call."""


def accumulate(value, acc=[]):
    acc.append(value)
    return acc


def tabulate(rows, *, table=dict()):
    table.update(rows)
    return table
