"""Near miss: None-plus-in-body construction and immutable defaults."""


def accumulate(value, acc=None):
    acc = list(acc or ())
    acc.append(value)
    return acc


def tabulate(rows, *, table=(), label=""):
    return dict(table), rows, label
