"""True positives: untagged, duplicate-kind, and unfrozen reports."""

from dataclasses import dataclass

from repro.api.reports import Report, report_type


@dataclass(frozen=True)
class UntaggedReport(Report):
    """No @report_type tag: Report.from_dict cannot rebuild it."""

    value: int


@report_type("dup")
@dataclass(frozen=True)
class FirstReport(Report):
    """Claims the 'dup' kind first."""

    value: int


@report_type("dup")
@dataclass(frozen=True)
class SecondReport(Report):
    """Duplicates the 'dup' kind."""

    value: int


@report_type("soft")
@dataclass
class UnfrozenReport(Report):
    """Kind-tagged but mutable."""

    value: int
