"""Near miss: a properly tagged frozen report, and a non-Report dataclass."""

from dataclasses import dataclass

from repro.api.reports import Report, report_type


@report_type("toy")
@dataclass(frozen=True)
class ToyReport(Report):
    """Kind-tagged and frozen: round-trips through Report.from_dict."""

    value: int


@dataclass
class PlainRecord:
    """Not a Report subclass: exempt from the kind-tag contract."""

    value: int
