"""True positive: set iteration, and a bare .keys() loop in metrics code."""


def rows(flags, totals):
    out = [flag for flag in {"a", "b", "c"}]
    for flag in set(flags):
        out.append(flag)
    for key in totals.keys():
        out.append(key)
    return out
