"""Near miss: sorted() wrapping makes the iteration order explicit."""


def rows(flags, totals):
    out = [flag for flag in sorted({"a", "b", "c"})]
    for flag in sorted(set(flags)):
        out.append(flag)
    for key in sorted(totals.keys()):
        out.append(key)
    return out
