"""True positive: global RNG draws no config seed controls."""

import random

import numpy as np


def jitter(values):
    offset = random.random()
    noise = np.random.rand(len(values))
    return offset, noise
