"""Near miss: seeded generator constructions are the sanctioned forms."""

import random

import numpy as np


def generators(seed):
    rng = np.random.default_rng(seed)
    legacy = np.random.RandomState(seed)
    stream = random.Random(seed)
    return rng, legacy, stream
