"""True positive: aliased wall-clock reads inside a simulation path."""

import datetime
from time import perf_counter as pc


def stamp_events(events):
    started = pc()
    label = datetime.datetime.now()
    return started, label, events
