"""Near miss: naming the clock (without calling it) and sleeping are fine."""

import time

MEASURE = time.perf_counter  # a reference, not a read


def wait_briefly():
    time.sleep(0)
