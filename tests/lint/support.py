"""Shared helpers: materialize fixture sources into miniature repo roots.

Rule tests never lint the live repo — each builds a throwaway root shaped
like ``<tmp>/src/repro/...`` from the sources in ``fixtures/`` (plus inline
artifacts such as ``docs/reference.md``), so every rule is exercised in
isolation against a known set of violations.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import LintEngine, LintReport

FIXTURES = Path(__file__).parent / "fixtures"


def fixture(name: str) -> str:
    """The source text of one fixture file."""
    return (FIXTURES / name).read_text(encoding="utf-8")


def make_root(tmp_path: Path, layout: dict[str, str]) -> Path:
    """Materialize ``{relpath: content}`` under a tmp dir and return it."""
    for relpath, content in layout.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(content, encoding="utf-8")
    return tmp_path


def run_rule(root: Path, rule: str) -> LintReport:
    """One rule's report over a mini root (no baseline)."""
    return LintEngine(root=root, rule_names=[rule]).run()
