"""The suppression ledger: matching, ratcheting, and the atomic stable write."""

from __future__ import annotations

import json

import pytest

from repro.lint import Baseline, BaselineEntry, Finding


def finding(line: int = 10, message: str = "call to time.time in a simulation path"):
    return Finding(
        rule="no-wall-clock",
        severity="error",
        path="src/repro/serving/x.py",
        line=line,
        message=message,
    )


class TestMatching:
    def test_identity_ignores_line_numbers(self):
        ledger = Baseline(
            entries=(
                BaselineEntry(
                    rule="no-wall-clock",
                    path="src/repro/serving/x.py",
                    message="call to time.time in a simulation path",
                ),
            )
        )
        kept, suppressed, stale = ledger.apply([finding(line=999)])
        assert kept == [] and suppressed == 1 and stale == 0

    def test_count_caps_the_suppression(self):
        # Two identical findings against a count-1 entry: the second one
        # (higher line) survives — a new occurrence is a new violation.
        ledger = Baseline(
            entries=(
                BaselineEntry(
                    rule="no-wall-clock",
                    path="src/repro/serving/x.py",
                    message="call to time.time in a simulation path",
                    count=1,
                ),
            )
        )
        kept, suppressed, stale = ledger.apply([finding(line=20), finding(line=10)])
        assert suppressed == 1
        assert [f.line for f in kept] == [20]

    def test_unmatched_entry_counts_as_stale(self):
        ledger = Baseline(
            entries=(
                BaselineEntry(rule="gone-rule", path="a.py", message="never fires"),
            )
        )
        kept, suppressed, stale = ledger.apply([finding()])
        assert len(kept) == 1 and suppressed == 0 and stale == 1

    def test_entry_count_must_be_positive(self):
        with pytest.raises(ValueError):
            BaselineEntry(rule="r", path="p", message="m", count=0)

    def test_finding_severity_is_validated(self):
        with pytest.raises(ValueError):
            Finding(rule="r", severity="fatal", path="p", line=1, message="m")


class TestPersistence:
    def test_load_missing_file_is_an_empty_ledger(self, tmp_path):
        ledger = Baseline.load(tmp_path / "absent.json")
        assert ledger.entries == ()

    def test_load_rejects_malformed_ledgers(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_save_is_byte_identical_across_reruns(self, tmp_path):
        findings = [finding(line=5), finding(line=7), finding(line=3, message="other")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        first = path.read_bytes()
        Baseline.from_findings(reversed(findings)).save(path)
        assert path.read_bytes() == first
        assert first.endswith(b"\n")
        # The write is temp-file + rename: no droppings next to the ledger.
        assert [p.name for p in tmp_path.iterdir()] == ["baseline.json"]

    def test_from_findings_folds_counts_and_preserves_reasons(self, tmp_path):
        findings = [finding(line=5), finding(line=7)]
        key = findings[0].key
        ledger = Baseline.from_findings(findings, reasons={key: "sanctioned"})
        assert len(ledger.entries) == 1
        entry = ledger.entries[0]
        assert entry.count == 2 and entry.reason == "sanctioned"
        path = ledger.save(tmp_path / "baseline.json")
        reloaded = Baseline.load(path)
        assert reloaded.entries == ledger.entries
