"""``python -m repro lint`` end to end, as a subprocess (what CI runs)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from tests.lint.support import fixture, make_root

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=300,
    )


class TestLintCli:
    def test_repo_passes_against_committed_baseline(self):
        result = run_cli("lint", "--baseline", "lint/baseline.json")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 error(s)" in result.stdout

    def test_seeded_violation_fails_naming_rule_and_location(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/clock.py": fixture("wall_clock_bad.py")}
        )
        result = run_cli("lint", "--root", str(root))
        assert result.returncode == 1
        assert "no-wall-clock" in result.stdout
        assert "src/repro/serving/clock.py:8" in result.stdout
        assert "time.perf_counter" in result.stdout

    def test_json_output_is_the_unified_report_schema(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/clock.py": fixture("wall_clock_bad.py")}
        )
        result = run_cli("lint", "--root", str(root), "--json")
        assert result.returncode == 1
        data = json.loads(result.stdout)
        assert data["kind"] == "lint"
        assert {f["rule"] for f in data["findings"]} == {"no-wall-clock"}

    def test_update_baseline_then_pass_then_byte_identical(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/clock.py": fixture("wall_clock_bad.py")}
        )
        ledger = tmp_path / "ledger.json"
        first = run_cli(
            "lint", "--root", str(root), "--baseline", str(ledger), "--update-baseline"
        )
        assert first.returncode == 0, first.stdout + first.stderr
        recorded = ledger.read_bytes()

        clean = run_cli("lint", "--root", str(root), "--baseline", str(ledger))
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "2 baselined" in clean.stdout

        again = run_cli(
            "lint", "--root", str(root), "--baseline", str(ledger), "--update-baseline"
        )
        assert again.returncode == 0
        assert ledger.read_bytes() == recorded

    def test_update_baseline_without_a_path_is_an_error(self, tmp_path):
        root = make_root(tmp_path, {"src/repro/serving/ok.py": '"""Fine."""\n'})
        result = run_cli("lint", "--root", str(root), "--update-baseline")
        assert result.returncode == 2
        assert "baseline" in (result.stdout + result.stderr).lower()
