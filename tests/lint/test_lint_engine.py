"""The orchestrator: parse errors, rule selection, the report, the ratchet.

Also holds the repo-wide gate: the live tree must lint clean against the
committed ``lint/baseline.json`` with no stale entries — the same check CI
runs, so a new violation (or a fixed one left in the ledger) fails here
first.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api.registry import LINT_RULES
from repro.api.reports import Report
from repro.lint import Baseline, LintEngine, LintReport

from tests.lint.support import fixture, make_root

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestEngine:
    def test_syntax_error_becomes_a_parse_error_finding(self, tmp_path):
        root = make_root(
            tmp_path,
            {
                "src/repro/serving/ok.py": '"""Fine."""\n',
                "src/repro/serving/broken.py": "def broken(:\n",
            },
        )
        report = LintEngine(root=root).run()
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.findings[0].path == "src/repro/serving/broken.py"
        # The unparseable file is excluded from the checked count.
        assert report.checked_files == 1

    def test_rule_names_select_a_subset(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/clock.py": fixture("wall_clock_bad.py")}
        )
        report = LintEngine(root=root, rule_names=["no-mutable-default"]).run()
        assert report.ok
        assert report.rules == ("no-mutable-default",)

    def test_default_rules_are_every_registered_rule(self, tmp_path):
        root = make_root(tmp_path, {"src/repro/serving/ok.py": '"""Fine."""\n'})
        report = LintEngine(root=root).run()
        assert list(report.rules) == LINT_RULES.names()

    def test_report_round_trips_through_the_unified_schema(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/clock.py": fixture("wall_clock_bad.py")}
        )
        report = LintEngine(root=root).run()
        assert not report.ok
        rebuilt = Report.from_dict(json.loads(report.to_json()))
        assert isinstance(rebuilt, LintReport)
        assert rebuilt == report


class TestUpdateBaseline:
    def test_update_then_rerun_is_clean_and_byte_identical(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/clock.py": fixture("wall_clock_bad.py")}
        )
        ledger = tmp_path / "ledger.json"
        engine = LintEngine(root=root, baseline=ledger)
        assert not engine.run().ok

        engine.update_baseline()
        first = ledger.read_bytes()
        report = engine.run()
        assert report.ok
        assert report.suppressed == 2 and report.stale_baseline == 0

        engine.update_baseline()
        assert ledger.read_bytes() == first

    def test_update_preserves_reasons_and_prunes_stale_entries(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/clock.py": fixture("wall_clock_bad.py")}
        )
        ledger = tmp_path / "ledger.json"
        engine = LintEngine(root=root, baseline=ledger)
        engine.update_baseline()

        # A human fills in a reason; a later update must carry it forward.
        loaded = Baseline.load(ledger)
        keep = loaded.entries[0]
        annotated = Baseline(
            entries=(
                BaselineEntryWithReason(keep),
                # An entry no finding matches any more: pruned on update.
                type(keep)(rule="gone", path="a.py", message="m"),
            )
        )
        annotated.save(ledger)
        report = engine.run()
        assert report.stale_baseline == 1

        engine.update_baseline()
        refreshed = Baseline.load(ledger)
        assert all(entry.rule != "gone" for entry in refreshed.entries)
        by_key = {entry.key: entry.reason for entry in refreshed.entries}
        assert by_key[keep.key] == "because"


def BaselineEntryWithReason(entry):
    """The same entry with a human reason filled in."""
    return type(entry)(
        rule=entry.rule,
        path=entry.path,
        message=entry.message,
        count=entry.count,
        reason="because",
    )


class TestRepoWide:
    def test_live_tree_is_clean_modulo_committed_baseline(self):
        report = LintEngine(
            root=REPO_ROOT, baseline=REPO_ROOT / "lint" / "baseline.json"
        ).run()
        assert report.ok, "\n" + report.format()
        assert report.stale_baseline == 0, "fixed findings left in the ledger"

    def test_committed_baseline_entries_all_carry_reasons(self):
        ledger = Baseline.load(REPO_ROOT / "lint" / "baseline.json")
        assert ledger.entries, "the sanctioned profiler exception should be here"
        for entry in ledger.entries:
            assert entry.reason.strip(), f"baseline entry {entry.key} needs a reason"
