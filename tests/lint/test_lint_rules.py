"""Per-rule behaviour: one true positive and one near miss for every rule.

Each test builds a miniature repo root from ``fixtures/`` and runs exactly
one rule over it, asserting both that the seeded violation is found (with
the right rule id, path, and message) and that the adjacent near-miss
construction stays clean.
"""

from __future__ import annotations

import json

from tests.lint.support import fixture, make_root, run_rule

GOOD_REFERENCE = """\
# Component reference

### `widget`

- class: `repro.serving.widget.Widget`
- A toy registered component with two constructor knobs.

| knob | default |
|---|---|
| `size` | *(required)* |
| `rate` | `1.0` |
"""

# Identical section, but the `rate` knob row is missing.
STALE_REFERENCE = GOOD_REFERENCE.replace("| `rate` | `1.0` |\n", "")


class TestNoWallClock:
    def test_flags_aliased_reads_in_sim_path(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/clock.py": fixture("wall_clock_bad.py")}
        )
        report = run_rule(root, "no-wall-clock")
        assert [f.rule for f in report.findings] == ["no-wall-clock"] * 2
        messages = {f.message for f in report.findings}
        assert "call to time.perf_counter in a simulation path" in messages
        assert "call to datetime.datetime.now in a simulation path" in messages
        assert all(f.path == "src/repro/serving/clock.py" for f in report.findings)

    def test_reference_without_call_is_clean(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/clock.py": fixture("wall_clock_ok.py")}
        )
        assert run_rule(root, "no-wall-clock").ok

    def test_same_call_outside_sim_paths_is_clean(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/analysis/clock.py": fixture("wall_clock_bad.py")}
        )
        assert run_rule(root, "no-wall-clock").ok


class TestNoUnseededRng:
    def test_flags_global_draws(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/sweep/rng.py": fixture("unseeded_rng_bad.py")}
        )
        report = run_rule(root, "no-unseeded-rng")
        messages = {f.message for f in report.findings}
        assert messages == {
            "unseeded global RNG call random.random",
            "unseeded global RNG call numpy.random.rand",
        }

    def test_seeded_factories_are_clean(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/sweep/rng.py": fixture("unseeded_rng_ok.py")}
        )
        assert run_rule(root, "no-unseeded-rng").ok


class TestNoSetIteration:
    def test_flags_set_loops_and_bare_keys_in_metrics(self, tmp_path):
        root = make_root(
            tmp_path,
            {"src/repro/obs/metrics_export.py": fixture("set_iteration_bad.py")},
        )
        report = run_rule(root, "no-set-iteration")
        messages = [f.message for f in report.findings]
        assert messages.count("iteration over a set (arbitrary order)") == 2
        assert messages.count("bare .keys() loop in report/metrics code") == 1

    def test_sorted_wrapping_is_clean(self, tmp_path):
        root = make_root(
            tmp_path,
            {"src/repro/obs/metrics_export.py": fixture("set_iteration_ok.py")},
        )
        assert run_rule(root, "no-set-iteration").ok

    def test_bare_keys_outside_reporting_code_is_clean(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/order.py": fixture("set_iteration_bad.py")}
        )
        report = run_rule(root, "no-set-iteration")
        # The two set loops still fire everywhere; the .keys() rule is
        # reporting-code-only.
        messages = [f.message for f in report.findings]
        assert messages.count("bare .keys() loop in report/metrics code") == 0
        assert messages.count("iteration over a set (arbitrary order)") == 2


class TestNoMutableDefault:
    def test_flags_shared_defaults(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/api/defaults.py": fixture("mutable_default_bad.py")}
        )
        report = run_rule(root, "no-mutable-default")
        messages = {f.message for f in report.findings}
        assert messages == {
            "mutable default argument in accumulate()",
            "mutable default argument in tabulate()",
        }

    def test_none_and_immutable_defaults_are_clean(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/api/defaults.py": fixture("mutable_default_ok.py")}
        )
        assert run_rule(root, "no-mutable-default").ok


class TestRegistryKnobsDocumented:
    def test_missing_knob_row_is_flagged(self, tmp_path):
        root = make_root(
            tmp_path,
            {
                "src/repro/serving/widget.py": fixture("knobs_component.py"),
                "docs/reference.md": STALE_REFERENCE,
            },
        )
        report = run_rule(root, "registry-knobs-documented")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert "'rate'" in finding.message and "'widget'" in finding.message
        assert finding.path == "src/repro/serving/widget.py"

    def test_missing_reference_file_is_flagged(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/widget.py": fixture("knobs_component.py")}
        )
        report = run_rule(root, "registry-knobs-documented")
        assert [f.message for f in report.findings] == [
            "docs/reference.md is missing but components are registered"
        ]

    def test_documented_component_is_clean(self, tmp_path):
        root = make_root(
            tmp_path,
            {
                "src/repro/serving/widget.py": fixture("knobs_component.py"),
                "docs/reference.md": GOOD_REFERENCE,
            },
        )
        assert run_rule(root, "registry-knobs-documented").ok

    def test_call_registered_preset_has_no_contract(self, tmp_path):
        # No decorator registration anywhere -> nothing to document, even
        # with no reference file at all.
        root = make_root(
            tmp_path, {"src/repro/serving/preset.py": fixture("knobs_preset_ok.py")}
        )
        assert run_rule(root, "registry-knobs-documented").ok


class TestExampleConfigsValidate:
    def _root(self, tmp_path, config: dict) -> object:
        return make_root(
            tmp_path,
            {
                "src/repro/api/config.py": fixture("config_schema.py"),
                "examples/configs/case.json": json.dumps(config),
            },
        )

    def test_unknown_key_is_flagged_with_path(self, tmp_path):
        root = self._root(tmp_path, {"seed": 1, "serving": {"num_request": 5}})
        report = run_rule(root, "example-configs-validate")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.path == "examples/configs/case.json"
        assert "unknown config key 'serving.num_request'" in finding.message
        assert "num_requests" in finding.message  # lists the known fields

    def test_known_keys_and_free_form_options_are_clean(self, tmp_path):
        root = self._root(
            tmp_path,
            {
                "seed": 1,
                "serving": {
                    "num_requests": 5,
                    "cache": {"capacity_bytes": 10},
                    "options": {"anything": True},
                },
            },
        )
        assert run_rule(root, "example-configs-validate").ok

    def test_sweep_bare_grid_form_is_clean(self, tmp_path):
        # Legacy sweep form: every key a dotted override path, none a field.
        root = self._root(
            tmp_path, {"sweep": {"serving.cache.policy": ["lru", "scan-lru"]}}
        )
        assert run_rule(root, "example-configs-validate").ok

    def test_unparseable_json_is_flagged(self, tmp_path):
        root = make_root(
            tmp_path,
            {
                "src/repro/api/config.py": fixture("config_schema.py"),
                "examples/configs/broken.json": "{not json",
            },
        )
        report = run_rule(root, "example-configs-validate")
        assert len(report.findings) == 1
        assert "does not parse as JSON" in report.findings[0].message


class TestReportsKindTagged:
    def test_untagged_duplicate_and_unfrozen_are_flagged(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/api/extra_reports.py": fixture("reports_bad.py")}
        )
        report = run_rule(root, "reports-kind-tagged")
        messages = sorted(f.message for f in report.findings)
        assert messages == [
            "Report subclass UnfrozenReport is not a frozen dataclass",
            "Report subclass UntaggedReport has no @report_type(...) kind tag",
            "report kind 'dup' of SecondReport duplicates "
            "src/repro/api/extra_reports.py:FirstReport",
        ]

    def test_tagged_frozen_report_is_clean(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/api/extra_reports.py": fixture("reports_ok.py")}
        )
        assert run_rule(root, "reports-kind-tagged").ok


class TestArrivalPairing:
    def test_half_pair_is_flagged(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/procs.py": fixture("arrivals_bad.py")}
        )
        report = run_rule(root, "arrival-trace-stream-pair")
        assert [f.message for f in report.findings] == [
            "ArrivalProcess subclass HalfArrivals defines trace() but not stream()"
        ]

    def test_full_pair_and_pure_wrapper_are_clean(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/serving/procs.py": fixture("arrivals_ok.py")}
        )
        assert run_rule(root, "arrival-trace-stream-pair").ok


class TestEventDispatch:
    def test_unmentioned_event_type_is_flagged_by_name(self, tmp_path):
        root = make_root(
            tmp_path,
            {
                "src/repro/serving/events.py": fixture("events_module.py"),
                "src/repro/obs/metrics.py": fixture("events_dispatch_bad.py"),
            },
        )
        report = run_rule(root, "events-dispatch-exhaustive")
        assert [f.message for f in report.findings] == [
            "ServerEvent subclass PongEvent is not handled in "
            "the telemetry metrics fold"
        ]
        assert report.findings[0].path == "src/repro/obs/metrics.py"

    def test_explicit_ignore_branch_counts_as_handled(self, tmp_path):
        root = make_root(
            tmp_path,
            {
                "src/repro/serving/events.py": fixture("events_module.py"),
                "src/repro/obs/metrics.py": fixture("events_dispatch_ok.py"),
            },
        )
        assert run_rule(root, "events-dispatch-exhaustive").ok

    def test_missing_site_method_is_flagged(self, tmp_path):
        root = make_root(
            tmp_path,
            {
                "src/repro/serving/events.py": fixture("events_module.py"),
                "src/repro/obs/metrics.py": (
                    '"""A collector that lost its fold."""\n\n\n'
                    "class MetricsCollector:\n"
                    '    """No on_event any more."""\n'
                ),
            },
        )
        report = run_rule(root, "events-dispatch-exhaustive")
        assert [f.message for f in report.findings] == [
            "dispatch site MetricsCollector.on_event not found "
            "(the telemetry metrics fold)"
        ]

    def test_no_events_module_disables_the_rule(self, tmp_path):
        root = make_root(
            tmp_path, {"src/repro/obs/metrics.py": fixture("events_dispatch_bad.py")}
        )
        assert run_rule(root, "events-dispatch-exhaustive").ok
