"""Numerical gradient checking helpers shared by the layer tests."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


def numerical_gradient(func, array: np.ndarray, epsilon: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function w.r.t. ``array`` (in place)."""
    gradient = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + epsilon
        plus = func()
        array[index] = original - epsilon
        minus = func()
        array[index] = original
        gradient[index] = (plus - minus) / (2 * epsilon)
        iterator.iternext()
    return gradient


def check_layer_gradients(
    layer: Module,
    input_array: np.ndarray,
    atol: float = 1e-6,
    rtol: float = 1e-4,
    check_params: bool = True,
) -> None:
    """Assert analytic gradients match numerical ones for inputs and parameters.

    The scalar objective is ``sum(forward(x) * weights)`` with fixed random
    weights, which exercises every output element.
    """
    rng = np.random.default_rng(0)
    output = layer.forward(input_array)
    mix = rng.normal(size=output.shape)

    def objective() -> float:
        return float(np.sum(layer.forward(input_array) * mix))

    layer.zero_grad()
    layer.forward(input_array)
    analytic_input_grad = layer.backward(mix)

    numeric_input_grad = numerical_gradient(objective, input_array)
    np.testing.assert_allclose(
        analytic_input_grad, numeric_input_grad, atol=atol, rtol=rtol,
        err_msg=f"input gradient mismatch for {type(layer).__name__}",
    )

    if not check_params:
        return
    for name, parameter in layer.named_parameters():
        layer.zero_grad()
        layer.forward(input_array)
        layer.backward(mix)
        analytic = parameter.grad.copy()
        numeric = numerical_gradient(objective, parameter.value)
        np.testing.assert_allclose(
            analytic, numeric, atol=atol, rtol=rtol,
            err_msg=f"parameter gradient mismatch for {type(layer).__name__}.{name}",
        )
