"""ResNet and MobileNetV2 architecture tests."""

import numpy as np
import pytest

from repro.nn.mobilenet import MobileNetV2, mobilenet_tiny, mobilenet_v2
from repro.nn.resnet import ResNet, resnet18, resnet50, resnet_tiny

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.fixture(scope="module")
def tiny_resnet():
    return resnet_tiny(num_classes=5, base_width=4)


@pytest.fixture(scope="module")
def tiny_mobilenet():
    return mobilenet_tiny(num_classes=5)


class TestResNetStructure:
    def test_resnet18_parameter_count_matches_reference(self):
        # torchvision's resnet18 has 11.69M parameters.
        model = resnet18()
        assert sum(p.size for p in model.parameters()) == pytest.approx(11.69e6, rel=0.01)

    def test_resnet50_parameter_count_matches_reference(self):
        # torchvision's resnet50 has 25.56M parameters.
        model = resnet50()
        assert sum(p.size for p in model.parameters()) == pytest.approx(25.56e6, rel=0.01)

    def test_stage_channel_progression(self):
        model = resnet18()
        assert model.stage1[0].conv1.in_channels == 64
        assert model.stage4[0].conv1.out_channels == 512
        assert model.feature_dim == 512

    def test_resnet50_uses_bottleneck_expansion(self):
        model = resnet50()
        assert model.feature_dim == 2048


class TestResNetForward:
    def test_tiny_resnet_output_shape(self, tiny_resnet, rng):
        out = tiny_resnet(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 5)

    def test_input_shape_agnostic(self, tiny_resnet, rng):
        """The same model accepts different resolutions (the paper's key requirement)."""
        for resolution in (32, 48, 64):
            out = tiny_resnet(rng.normal(size=(1, 3, resolution, resolution)))
            assert out.shape == (1, 5)

    def test_backward_produces_input_gradient(self, tiny_resnet, rng):
        x = rng.normal(size=(2, 3, 32, 32))
        out = tiny_resnet(x)
        grad = tiny_resnet.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert np.isfinite(grad).all()

    def test_forward_features_returns_pooled_vector(self, tiny_resnet, rng):
        features = tiny_resnet.forward_features(rng.normal(size=(2, 3, 32, 32)))
        assert features.shape == (2, tiny_resnet.feature_dim)


class TestMobileNet:
    def test_mobilenet_v2_parameter_count_matches_reference(self):
        # torchvision's mobilenet_v2 has ~3.50M parameters.
        model = mobilenet_v2()
        assert sum(p.size for p in model.parameters()) == pytest.approx(3.50e6, rel=0.02)

    def test_tiny_mobilenet_output_shape(self, tiny_mobilenet, rng):
        out = tiny_mobilenet(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 5)

    def test_input_shape_agnostic(self, tiny_mobilenet, rng):
        for resolution in (32, 64):
            out = tiny_mobilenet(rng.normal(size=(1, 3, resolution, resolution)))
            assert out.shape == (1, 5)

    def test_backward_produces_input_gradient(self, tiny_mobilenet, rng):
        x = rng.normal(size=(1, 3, 32, 32))
        out = tiny_mobilenet(x)
        grad = tiny_mobilenet.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert np.isfinite(grad).all()

    def test_width_multiplier_scales_channels(self):
        wide = MobileNetV2(width_mult=1.0)
        narrow = MobileNetV2(width_mult=0.5)
        assert sum(p.size for p in narrow.parameters()) < sum(
            p.size for p in wide.parameters()
        )


class TestTrainability:
    def test_tiny_resnet_overfits_small_batch(self, rng):
        """A few gradient steps on one batch must reduce the loss substantially."""
        from repro.nn.losses import CrossEntropyLoss
        from repro.nn.optim import SGD

        model = resnet_tiny(num_classes=3, base_width=4, seed=1)
        x = rng.normal(size=(6, 3, 32, 32))
        labels = np.array([0, 1, 2, 0, 1, 2])
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        first_loss = None
        for _ in range(15):
            logits = model(x)
            loss = loss_fn(logits, labels)
            if first_loss is None:
                first_loss = loss
            optimizer.zero_grad()
            model.backward(loss_fn.backward())
            optimizer.step()
        assert loss < first_loss * 0.5
