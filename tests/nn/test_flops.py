"""FLOP counter tests, anchored to the paper's published numbers."""

import numpy as np
import pytest

from repro.nn.flops import (
    conv2d_macs,
    count_model_flops,
    count_model_gflops,
    conv_layer_workloads,
    trace_model,
)
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.flops import linear_macs
from repro.nn.mobilenet import mobilenet_v2
from repro.nn.resnet import resnet18, resnet50


@pytest.fixture(scope="module")
def r18():
    return resnet18()


@pytest.fixture(scope="module")
def r50():
    return resnet50()


class TestLayerCounts:
    def test_conv_macs_closed_form(self):
        layer = Conv2d(16, 32, kernel_size=3, stride=1, padding=1, bias=False)
        macs = conv2d_macs(layer, (1, 16, 28, 28))
        assert macs == 1 * 32 * 28 * 28 * 16 * 9

    def test_conv_macs_with_stride_and_bias(self):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1, bias=True)
        macs = conv2d_macs(layer, (1, 3, 32, 32))
        out_hw = 16 * 16
        assert macs == 8 * out_hw * 3 * 9 + 8 * out_hw

    def test_grouped_conv_macs_scale_with_groups(self):
        dense = Conv2d(16, 16, kernel_size=3, padding=1, bias=False)
        depthwise = Conv2d(16, 16, kernel_size=3, padding=1, groups=16, bias=False)
        assert conv2d_macs(dense, (1, 16, 14, 14)) == 16 * conv2d_macs(
            depthwise, (1, 16, 14, 14)
        )

    def test_linear_macs(self):
        layer = Linear(512, 1000)
        assert linear_macs(layer, (1, 512)) == 512 * 1000 + 1000


class TestPaperAnchors:
    """Table I of the paper reports GFLOPs for ResNet-18 at seven resolutions."""

    PAPER_TABLE1 = {112: 0.5, 168: 1.1, 224: 1.8, 280: 2.9, 336: 4.2, 392: 5.8, 448: 7.3}

    @pytest.mark.parametrize("resolution,expected", sorted(PAPER_TABLE1.items()))
    def test_resnet18_gflops_match_table1(self, r18, resolution, expected):
        assert count_model_gflops(r18, resolution) == pytest.approx(expected, abs=0.06)

    def test_resnet50_gflops_at_224(self, r50):
        # The paper quotes 4.1 GFLOPs for ResNet-50 at 224 (§VII.b).
        assert count_model_gflops(r50, 224) == pytest.approx(4.1, abs=0.05)

    def test_mobilenet_v2_gflops_at_112(self):
        # The paper quotes 0.08 GFLOPs for the scale model at 112 (§VII.b).
        assert count_model_gflops(mobilenet_v2(), 112) == pytest.approx(0.08, abs=0.01)

    def test_quadratic_scaling_with_resolution(self, r18):
        low = count_model_flops(r18, 224)
        high = count_model_flops(r18, 448)
        assert high / low == pytest.approx(4.0, rel=0.02)


class TestTraceAndConventions:
    def test_flops_convention_doubles_macs(self, r18):
        macs = count_model_flops(r18, 224, convention="macs")
        flops = count_model_flops(r18, 224, convention="flops")
        assert flops == 2 * macs

    def test_unknown_convention_rejected(self, r18):
        with pytest.raises(ValueError):
            count_model_flops(r18, 224, convention="ops")

    def test_trace_covers_all_convolutions(self, r18):
        records = trace_model(r18, (1, 3, 224, 224))
        conv_records = [r for r in records if r.layer_type == "Conv2d"]
        # ResNet-18: 1 stem + 16 block convs + 3 downsample convs = 20.
        assert len(conv_records) == 20

    def test_trace_shapes_are_consistent(self, r18):
        records = trace_model(r18, (1, 3, 224, 224))
        for record in records:
            assert len(record.input_shape) in (2, 4)
            assert record.macs >= 0

    def test_conv_layer_workloads_filters_only_convs(self, r50):
        workloads = conv_layer_workloads(r50, 224)
        assert all(w.layer_type == "Conv2d" for w in workloads)
        # ResNet-50: 1 stem + 3*3 + 4*3 + 6*3 + 3*3 block convs + 4 downsample = 53.
        assert len(workloads) == 53

    def test_batch_size_scales_counts_linearly(self, r18):
        single = count_model_flops(r18, 224, batch_size=1)
        batch = count_model_flops(r18, 224, batch_size=4)
        assert batch == 4 * single

    def test_detail_records_conv_attributes(self, r18):
        records = trace_model(r18, (1, 3, 224, 224))
        stem = next(r for r in records if r.name.endswith("stem_conv"))
        assert stem.detail_dict == {"kernel_size": 7, "stride": 2, "padding": 3, "groups": 1}
