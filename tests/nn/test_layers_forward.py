"""Forward-pass correctness of the layer primitives."""

import numpy as np
import pytest

from repro.nn.layers.activations import LeakyReLU, ReLU, ReLU6, Sigmoid
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d


class TestConv2d:
    def test_output_shape_matches_formula(self):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        out = layer.forward(np.random.default_rng(0).normal(size=(2, 3, 17, 17)))
        assert out.shape == (2, 8, 9, 9)
        assert layer.output_shape((2, 3, 17, 17)) == (2, 8, 9, 9)

    def test_identity_kernel_preserves_input(self):
        layer = Conv2d(1, 1, kernel_size=1, bias=False)
        layer.weight.value[...] = 1.0
        x = np.random.default_rng(0).normal(size=(1, 1, 5, 5))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_known_convolution_value(self):
        # 2x2 all-ones kernel over a 3x3 ramp: top-left output is sum of the
        # 2x2 window.
        layer = Conv2d(1, 1, kernel_size=2, bias=False)
        layer.weight.value[...] = 1.0
        x = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
        out = layer.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx(0 + 1 + 3 + 4)
        assert out[0, 0, 1, 1] == pytest.approx(4 + 5 + 7 + 8)

    def test_bias_added_per_channel(self):
        layer = Conv2d(1, 2, kernel_size=1, bias=True)
        layer.weight.value[...] = 0.0
        layer.bias.value[...] = np.array([1.5, -2.0])
        out = layer.forward(np.zeros((1, 1, 4, 4)))
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_grouped_convolution_is_blockwise(self):
        # groups=2 must not mix the two channel halves.
        layer = Conv2d(2, 2, kernel_size=1, groups=2, bias=False)
        layer.weight.value[...] = 1.0
        x = np.zeros((1, 2, 3, 3))
        x[0, 0] = 1.0
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], 1.0)
        np.testing.assert_allclose(out[0, 1], 0.0)

    def test_depthwise_matches_manual_per_channel(self):
        rng = np.random.default_rng(1)
        layer = Conv2d(3, 3, kernel_size=3, padding=1, groups=3, bias=False, rng=rng)
        x = rng.normal(size=(1, 3, 6, 6))
        out = layer.forward(x)
        for channel in range(3):
            single = Conv2d(1, 1, kernel_size=3, padding=1, bias=False)
            single.weight.value[...] = layer.weight.value[channel]
            expected = single.forward(x[:, channel : channel + 1])
            np.testing.assert_allclose(out[:, channel : channel + 1], expected)

    def test_rejects_bad_group_configuration(self):
        with pytest.raises(ValueError):
            Conv2d(3, 8, kernel_size=3, groups=2)


class TestLinear:
    def test_matches_manual_affine(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        expected = x @ layer.weight.value.T + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert not hasattr(layer, "bias")
        out = layer.forward(np.zeros((2, 4)))
        np.testing.assert_allclose(out, 0.0)

    def test_rejects_non_2d_input(self):
        layer = Linear(4, 3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 4, 1)))


class TestActivations:
    def test_relu_clips_negative(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_allclose(layer.forward(x), [[0.0, 0.0, 2.0]])

    def test_relu6_clips_above_six(self):
        layer = ReLU6()
        x = np.array([[-1.0, 3.0, 9.0]])
        np.testing.assert_allclose(layer.forward(x), [[0.0, 3.0, 6.0]])

    def test_leaky_relu_scales_negative(self):
        layer = LeakyReLU(negative_slope=0.1)
        x = np.array([[-2.0, 4.0]])
        np.testing.assert_allclose(layer.forward(x), [[-0.2, 4.0]])

    def test_sigmoid_range_and_symmetry(self):
        layer = Sigmoid()
        x = np.linspace(-10, 10, 21).reshape(1, -1)
        out = layer.forward(x)
        assert np.all(out > 0) and np.all(out < 1)
        np.testing.assert_allclose(out + layer.forward(-x), 1.0, atol=1e-12)

    def test_sigmoid_extreme_values_do_not_overflow(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[-1000.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        layer = BatchNorm2d(3)
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, scale=3.0, size=(4, 3, 8, 8))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_track_batch_statistics(self):
        layer = BatchNorm2d(2, momentum=1.0)
        x = np.random.default_rng(0).normal(loc=2.0, size=(8, 2, 4, 4))
        layer.forward(x)
        np.testing.assert_allclose(layer.running_mean, x.mean(axis=(0, 2, 3)), atol=1e-10)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm2d(2, momentum=1.0)
        x = np.random.default_rng(0).normal(size=(8, 2, 4, 4))
        layer.forward(x)
        layer.eval()
        y = np.random.default_rng(1).normal(size=(3, 2, 4, 4))
        out = layer.forward(y)
        expected = (y - layer.running_mean.reshape(1, -1, 1, 1)) / np.sqrt(
            layer.running_var.reshape(1, -1, 1, 1) + layer.eps
        )
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_rejects_wrong_channel_count(self):
        layer = BatchNorm2d(3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 4, 2, 2)))


class TestPooling:
    def test_max_pool_picks_maximum(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_with_padding_ignores_pad_values(self):
        layer = MaxPool2d(3, stride=2, padding=1)
        x = -np.ones((1, 1, 4, 4))  # all negative: padding zeros must not win
        out = layer.forward(x)
        assert np.all(out == -1.0)

    def test_avg_pool_averages(self):
        layer = AvgPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avg_pool_reduces_spatial_dims(self):
        layer = GlobalAvgPool2d()
        x = np.random.default_rng(0).normal(size=(2, 5, 7, 9))
        out = layer.forward(x)
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))


class TestDropoutAndFlatten:
    def test_dropout_identity_in_eval_mode(self):
        layer = Dropout(0.5)
        layer.eval()
        x = np.random.default_rng(0).normal(size=(4, 10))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_dropout_preserves_expected_value(self):
        layer = Dropout(0.3, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.random.default_rng(0).normal(size=(3, 2, 4, 5))
        out = layer.forward(x)
        assert out.shape == (3, 40)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)
