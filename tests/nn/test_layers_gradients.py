"""Numerical gradient checks for every layer's backward pass."""

import numpy as np
import pytest

from repro.nn.layers.activations import LeakyReLU, ReLU, Sigmoid
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.mobilenet import InvertedResidual
from repro.nn.resnet import BasicBlock, Bottleneck
from tests.nn.gradient_check import check_layer_gradients


@pytest.fixture
def rng():
    """Fresh, fixed-seed generator so gradient checks are order-independent.

    Overrides the session-scoped ``rng`` fixture from conftest: numerical
    gradient checks are sensitive to the exact inputs drawn (values near
    activation kinks), so each test must see the same inputs regardless of
    which other tests ran before it.
    """
    return np.random.default_rng(20240613)


@pytest.fixture
def small_input(rng):
    return rng.normal(size=(2, 3, 6, 6))


def test_conv2d_gradients(small_input):
    layer = Conv2d(3, 4, kernel_size=3, stride=1, padding=1, rng=np.random.default_rng(0))
    check_layer_gradients(layer, small_input)


def test_conv2d_strided_gradients(small_input):
    layer = Conv2d(3, 2, kernel_size=3, stride=2, padding=1, rng=np.random.default_rng(0))
    check_layer_gradients(layer, small_input)


def test_conv2d_grouped_gradients(rng):
    layer = Conv2d(4, 4, kernel_size=3, padding=1, groups=4, rng=np.random.default_rng(0))
    check_layer_gradients(layer, rng.normal(size=(2, 4, 5, 5)))


def test_linear_gradients(rng):
    layer = Linear(7, 4, rng=np.random.default_rng(0))
    check_layer_gradients(layer, rng.normal(size=(3, 7)))


def test_relu_gradients(rng):
    # Keep inputs away from the kink at zero to avoid numerical-diff ambiguity.
    x = rng.normal(size=(2, 3, 4, 4))
    x[np.abs(x) < 0.05] = 0.1
    check_layer_gradients(ReLU(), x)


def test_leaky_relu_gradients(rng):
    x = rng.normal(size=(2, 3, 4, 4))
    x[np.abs(x) < 0.05] = 0.1
    check_layer_gradients(LeakyReLU(0.2), x)


def test_sigmoid_gradients(rng):
    check_layer_gradients(Sigmoid(), rng.normal(size=(3, 5)))


def test_batchnorm_training_gradients(rng):
    layer = BatchNorm2d(3)
    check_layer_gradients(layer, rng.normal(size=(4, 3, 3, 3)), atol=1e-5, rtol=1e-3)


def test_batchnorm_eval_gradients(rng):
    layer = BatchNorm2d(3)
    layer.forward(rng.normal(size=(4, 3, 3, 3)))  # populate running stats
    layer.eval()
    check_layer_gradients(layer, rng.normal(size=(2, 3, 3, 3)))


def test_maxpool_gradients(rng):
    check_layer_gradients(MaxPool2d(2), rng.normal(size=(2, 2, 6, 6)), check_params=False)


def test_avgpool_gradients(rng):
    check_layer_gradients(AvgPool2d(2), rng.normal(size=(2, 2, 6, 6)), check_params=False)


def test_global_avgpool_gradients(rng):
    check_layer_gradients(GlobalAvgPool2d(), rng.normal(size=(2, 3, 5, 5)), check_params=False)


def test_flatten_gradients(rng):
    check_layer_gradients(Flatten(), rng.normal(size=(2, 3, 4, 4)), check_params=False)


def test_basic_block_gradients(rng):
    block = BasicBlock(4, 4, rng=np.random.default_rng(0))
    x = rng.normal(size=(2, 4, 5, 5))
    x[np.abs(x) < 0.05] = 0.1
    check_layer_gradients(block, x, atol=1e-4, rtol=1e-2)


def test_basic_block_downsample_gradients(rng):
    block = BasicBlock(3, 6, stride=2, rng=np.random.default_rng(0))
    x = rng.normal(size=(2, 3, 6, 6))
    x[np.abs(x) < 0.05] = 0.1
    check_layer_gradients(block, x, atol=1e-4, rtol=1e-2)


def test_bottleneck_gradients(rng):
    block = Bottleneck(4, 2, rng=np.random.default_rng(0))
    x = rng.normal(size=(1, 4, 5, 5))
    x[np.abs(x) < 0.05] = 0.1
    check_layer_gradients(block, x, atol=1e-4, rtol=1e-2)


def test_inverted_residual_gradients(rng):
    block = InvertedResidual(4, 4, stride=1, expand_ratio=2, rng=np.random.default_rng(0))
    x = rng.normal(size=(1, 4, 5, 5))
    x[np.abs(x) < 0.05] = 0.1
    check_layer_gradients(block, x, atol=1e-4, rtol=1e-2)
