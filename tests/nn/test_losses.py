"""Loss function tests."""

import numpy as np
import pytest

from repro.nn.losses import (
    BinaryCrossEntropyLoss,
    CrossEntropyLoss,
    log_softmax,
    sigmoid,
    softmax,
)
from tests.nn.gradient_check import numerical_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(4, 7))
        probs = softmax(logits, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_invariant_to_constant_shift(self):
        logits = np.random.default_rng(0).normal(size=(3, 5))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_log_softmax_matches_log_of_softmax(self):
        logits = np.random.default_rng(0).normal(size=(3, 5))
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-12)

    def test_no_overflow_for_large_logits(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(probs).all()


class TestCrossEntropy:
    def test_perfect_prediction_gives_small_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.array([[20.0, 0.0, 0.0], [0.0, 20.0, 0.0]])
        assert loss_fn(logits, np.array([0, 1])) < 1e-6

    def test_uniform_prediction_gives_log_num_classes(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        assert loss_fn(logits, np.zeros(4, dtype=int)) == pytest.approx(np.log(10))

    def test_gradient_matches_numerical(self):
        loss_fn = CrossEntropyLoss()
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)

        loss_fn(logits, labels)
        analytic = loss_fn.backward()
        numeric = numerical_gradient(lambda: loss_fn(logits, labels), logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_rejects_shape_mismatch(self):
        loss_fn = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss_fn(np.zeros((3, 4)), np.zeros(2, dtype=int))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class TestBinaryCrossEntropy:
    def test_perfect_multilabel_prediction(self):
        loss_fn = BinaryCrossEntropyLoss()
        logits = np.array([[30.0, -30.0], [-30.0, 30.0]])
        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert loss_fn(logits, targets) < 1e-9

    def test_chance_prediction_gives_log2(self):
        loss_fn = BinaryCrossEntropyLoss()
        logits = np.zeros((3, 4))
        targets = np.random.default_rng(0).integers(0, 2, size=(3, 4)).astype(float)
        assert loss_fn(logits, targets) == pytest.approx(np.log(2))

    def test_gradient_matches_numerical(self):
        loss_fn = BinaryCrossEntropyLoss()
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 3))
        targets = rng.integers(0, 2, size=(4, 3)).astype(float)

        loss_fn(logits, targets)
        analytic = loss_fn.backward()
        numeric = numerical_gradient(lambda: loss_fn(logits, targets), logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_no_overflow_for_extreme_logits(self):
        loss_fn = BinaryCrossEntropyLoss()
        value = loss_fn(np.array([[1e4, -1e4]]), np.array([[0.0, 1.0]]))
        assert np.isfinite(value)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            BinaryCrossEntropyLoss()(np.zeros((2, 3)), np.zeros((3, 2)))


class TestSigmoid:
    def test_matches_definition(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x), 1.0 / (1.0 + np.exp(-x)), atol=1e-12)

    def test_extreme_values(self):
        out = sigmoid(np.array([-1e6, 1e6]))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)
