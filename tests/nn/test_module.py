"""Module container and state-dict tests."""

import numpy as np
import pytest

from repro.nn.layers.activations import ReLU
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.serialization import load_checkpoint, save_checkpoint


class TestParameterRegistration:
    def test_parameters_discovered_recursively(self):
        model = Sequential(Conv2d(3, 4, 3), ReLU(), Linear(4, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names
        assert "layer2.bias" in names
        assert len(names) == 4  # conv w/b + linear w/b

    def test_num_parameters_counts_elements(self):
        layer = Linear(10, 5)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_zero_grad_resets_all(self):
        model = Sequential(Linear(3, 3), Linear(3, 2))
        for parameter in model.parameters():
            parameter.grad[...] = 1.0
        model.zero_grad()
        assert all(np.all(p.grad == 0.0) for p in model.parameters())


class TestTrainEvalMode:
    def test_mode_propagates_to_children(self):
        model = Sequential(BatchNorm2d(3), Sequential(BatchNorm2d(3)))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())


class TestSequential:
    def test_forward_applies_in_order(self):
        double = Linear(2, 2, bias=False)
        double.weight.value[...] = 2.0 * np.eye(2)
        triple = Linear(2, 2, bias=False)
        triple.weight.value[...] = 3.0 * np.eye(2)
        model = Sequential(double, triple)
        np.testing.assert_allclose(model.forward(np.eye(2)), 6.0 * np.eye(2))

    def test_len_iter_getitem(self):
        layers = [ReLU(), ReLU(), ReLU()]
        model = Sequential(*layers)
        assert len(model) == 3
        assert list(model) == layers
        assert model[1] is layers[1]

    def test_append(self):
        model = Sequential(ReLU())
        model.append(ReLU())
        assert len(model) == 2

    def test_backward_reverses_order(self):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        x = np.random.default_rng(0).normal(size=(2, 3))
        out = model.forward(x)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestStateDict:
    def test_roundtrip_preserves_values(self):
        model = Sequential(Conv2d(3, 4, 3), BatchNorm2d(4), Linear(4, 2))
        state = model.state_dict()
        clone = Sequential(Conv2d(3, 4, 3), BatchNorm2d(4), Linear(4, 2))
        clone.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_allclose(a.value, b.value)

    def test_state_dict_includes_buffers(self):
        model = BatchNorm2d(3)
        assert "running_mean" in model.state_dict()

    def test_load_rejects_unknown_key(self):
        model = Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(2)})

    def test_load_rejects_shape_mismatch(self):
        model = Linear(2, 2)
        with pytest.raises(ValueError):
            model.load_state_dict({"weight": np.zeros((3, 3))})

    def test_checkpoint_file_roundtrip(self, tmp_path):
        model = Sequential(Linear(4, 3), ReLU(), Linear(3, 2))
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        clone = Sequential(Linear(4, 3), ReLU(), Linear(3, 2))
        load_checkpoint(clone, path)
        x = np.random.default_rng(0).normal(size=(2, 4))
        np.testing.assert_allclose(model.forward(x), clone.forward(x))


class TestModuleErrors:
    def test_base_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))

    def test_parameter_shape_and_size(self):
        parameter = Parameter(np.zeros((2, 3)))
        assert parameter.shape == (2, 3)
        assert parameter.size == 6
