"""Optimizer tests."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, LRScheduler, Optimizer


def quadratic_problem(dim: int = 5, seed: int = 0):
    """A convex quadratic: minimize ||x - target||^2."""
    rng = np.random.default_rng(seed)
    target = rng.normal(size=dim)
    parameter = Parameter(np.zeros(dim))

    def step_gradient() -> float:
        parameter.grad[...] = 2.0 * (parameter.value - target)
        return float(np.sum((parameter.value - target) ** 2))

    return parameter, target, step_gradient


class TestSGD:
    def test_plain_sgd_converges_on_quadratic(self):
        parameter, target, grad = quadratic_problem()
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            grad()
            optimizer.step()
        np.testing.assert_allclose(parameter.value, target, atol=1e-4)

    def test_momentum_accelerates_convergence(self):
        losses = {}
        for momentum in (0.0, 0.9):
            parameter, target, grad = quadratic_problem()
            optimizer = SGD([parameter], lr=0.02, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                loss = grad()
                optimizer.step()
            losses[momentum] = loss
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.ones(3))
        optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
        optimizer.step()  # gradient is zero; only decay applies
        np.testing.assert_allclose(parameter.value, 0.9)

    def test_single_step_matches_manual_update(self):
        parameter = Parameter(np.array([1.0, 2.0]))
        parameter.grad[...] = np.array([0.5, -1.0])
        SGD([parameter], lr=0.2).step()
        np.testing.assert_allclose(parameter.value, [0.9, 2.2])

    def test_rejects_bad_hyperparameters(self):
        parameter = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            SGD([parameter], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([parameter], lr=0.1, nesterov=True)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter, target, grad = quadratic_problem()
        optimizer = Adam([parameter], lr=0.05)
        for _ in range(500):
            optimizer.zero_grad()
            grad()
            optimizer.step()
        np.testing.assert_allclose(parameter.value, target, atol=1e-3)

    def test_first_step_size_is_learning_rate(self):
        # Adam's bias correction makes the first update magnitude ~= lr.
        parameter = Parameter(np.array([0.0]))
        parameter.grad[...] = np.array([3.7])
        Adam([parameter], lr=0.01).step()
        assert abs(parameter.value[0]) == pytest.approx(0.01, rel=1e-3)

    def test_skips_non_trainable_parameters(self):
        frozen = Parameter(np.ones(2), requires_grad=False)
        trainable = Parameter(np.ones(2))
        optimizer = Adam([frozen, trainable], lr=0.1)
        assert optimizer.parameters == [trainable]


class TestScheduler:
    def test_step_decay(self):
        parameter = Parameter(np.zeros(1))
        optimizer = SGD([parameter], lr=1.0)
        scheduler = LRScheduler(optimizer, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            scheduler.step()
            lrs.append(optimizer.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])


class TestOptimizerBase:
    def test_requires_trainable_parameters(self):
        frozen = Parameter(np.ones(2), requires_grad=False)
        with pytest.raises(ValueError):
            Optimizer([frozen])

    def test_zero_grad_clears_gradients(self):
        parameter = Parameter(np.ones(3))
        parameter.grad[...] = 5.0
        SGD([parameter], lr=0.1).zero_grad()
        np.testing.assert_allclose(parameter.grad, 0.0)
