"""Shared fixtures for the observability tests: a small server under load."""

import pytest

from repro.codec.progressive import ProgressiveEncoder
from repro.core.policies import StaticResolutionPolicy
from repro.nn.resnet import resnet_tiny
from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import LinearBatchCost
from repro.serving.cache import ScanCache
from repro.serving.server import InferenceServer, ServerConfig
from repro.storage.policy import ScanReadPolicy
from repro.storage.store import ImageStore

RESOLUTIONS = (24, 32, 48)


@pytest.fixture(scope="package")
def obs_store(tiny_imagenet_like):
    store = ImageStore(encoder=ProgressiveEncoder(quality=85))
    for sample in list(tiny_imagenet_like)[:8]:
        store.put(f"img{sample.index}", sample.render(), label=sample.label)
    return store


@pytest.fixture(scope="package")
def obs_backbone():
    return resnet_tiny(num_classes=4, base_width=4, seed=0)


@pytest.fixture
def make_server(obs_store, obs_backbone):
    """Factory for a small deterministic server over the shared store."""

    def _make(
        admission=None,
        prefetch=None,
        observers=(),
        profiler=None,
        policy=None,
        **config,
    ):
        defaults = dict(
            resolutions=RESOLUTIONS,
            scale_resolution=24,
            num_workers=2,
            max_batch_size=4,
            max_wait_s=0.004,
        )
        defaults.update(config)
        return InferenceServer(
            obs_store,
            obs_backbone,
            policy if policy is not None else StaticResolutionPolicy(32),
            ServerConfig(**defaults),
            read_policy=ScanReadPolicy(
                ssim_thresholds={24: 0.90, 32: 0.92, 48: 0.95}
            ),
            cache=ScanCache(300_000),
            batch_cost=LinearBatchCost(per_item_seconds=0.002, fixed_seconds=0.002),
            admission=admission,
            prefetch=prefetch,
            observers=observers,
            profiler=profiler,
        )

    return _make


@pytest.fixture
def make_trace(obs_store):
    """Factory for a seeded Poisson trace over the shared store's keys."""

    def _make(n=24, rate_rps=900.0, seed=5):
        return PoissonArrivals(rate_rps=rate_rps, seed=seed, zipf_alpha=1.0).trace(
            obs_store.keys(), n
        )

    return _make
