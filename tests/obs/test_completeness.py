"""Event-stream completeness: every request's story closes, even when hard.

The tracer treats an arrival without a terminal event as an orphan, so
these tests drive the nastiest stream shapes — admission drops under
overload, prefetch activity between arrivals, shard-partitioned traces,
and a ring-buffered event log — and fail if any span tree is left open or
any lifecycle stage goes missing.
"""

from repro.core.policies import StaticResolutionPolicy
from repro.obs.exporters import TelemetryPipeline
from repro.obs.tracing import RequestTracer
from repro.serving.arrivals import OnOffArrivals
from repro.serving.control import EwmaAdmissionController, NextScanPrefetcher
from repro.serving.events import (
    EventLog,
    PrefetchIssued,
    RequestArrived,
    RequestCompleted,
    RequestDropped,
)
from repro.serving.fleet import ConsistentHashRouter, ShardedFleet


def stress_server(make_server, tracer, log=None):
    """A server under admission pressure with prefetch enabled.

    Serving at the lowest resolution leaves upgrade headroom above every
    demand-filled cache prefix, so idle gaps really do trigger prefetch.
    """
    observers = [tracer] if log is None else [tracer, log]
    return make_server(
        observers=observers,
        policy=StaticResolutionPolicy(24),
        admission=EwmaAdmissionController(alpha=0.5, depth_threshold=3.0),
        prefetch=NextScanPrefetcher(
            idle_threshold_s=0.05, max_keys_per_gap=4, seed=3
        ),
    )


def bursty_trace(keys, n=48, seed=2):
    """ON/OFF traffic: overload bursts (drops) between idle lulls (prefetch)."""
    return OnOffArrivals(
        on_rate_rps=2000.0, mean_on_s=0.03, mean_off_s=0.15, seed=seed, zipf_alpha=1.0
    ).trace(keys, n)


class TestSingleServerCompleteness:
    def test_every_request_reaches_a_terminal_event(
        self, make_server, obs_store
    ):
        tracer = RequestTracer()
        log = EventLog()
        server = stress_server(make_server, tracer, log)
        trace = bursty_trace(obs_store.keys(), n=48)
        report = server.run(trace)
        # The stream exercised all the hard paths, not a quiet run.
        assert report.dropped_requests > 0
        assert any(isinstance(e, PrefetchIssued) for e in log.events)
        # Every arrival closed: no request is stuck between events.
        assert tracer.orphans() == []
        assert tracer.completed_requests + tracer.dropped_requests == len(trace)
        terminal = sum(
            isinstance(e, (RequestCompleted, RequestDropped)) for e in log.events
        )
        arrivals = sum(isinstance(e, RequestArrived) for e in log.events)
        assert arrivals == terminal == len(trace)

    def test_outcomes_partition_the_trace(self, make_server, obs_store):
        tracer = RequestTracer()
        server = stress_server(make_server, tracer)
        trace = bursty_trace(obs_store.keys(), n=48)
        server.run(trace)
        by_outcome = {"served": set(), "dropped": set()}
        for span_tree in tracer.traces:
            by_outcome[span_tree.outcome].add(span_tree.request_id)
        assert not (by_outcome["served"] & by_outcome["dropped"])
        assert by_outcome["served"] | by_outcome["dropped"] == {
            request.request_id for request in trace
        }

    def test_ring_buffered_log_does_not_hide_orphans(self, make_server, obs_store):
        """Dropping old events from the log must not break the tracer."""
        tracer = RequestTracer()
        log = EventLog(max_events=16)
        server = stress_server(make_server, tracer, log)
        server.run(bursty_trace(obs_store.keys(), n=48))
        assert log.dropped_events > 0
        assert len(log.events) == 16
        assert tracer.orphans() == []


class TestFleetCompleteness:
    def test_sharded_run_closes_every_span_tree(self, make_server, obs_store):
        """Prefetch + drops + multi-shard: the union of streams is complete."""
        servers = [
            stress_server(make_server, RequestTracer()) for _ in range(3)
        ]
        tracers = []
        pipelines = []
        for server in servers:
            pipeline = TelemetryPipeline(sample_rate=1.0)
            pipeline.attach(server)
            pipelines.append(pipeline)
            tracers.append(pipeline.tracer)
        fleet = ShardedFleet(servers, router=ConsistentHashRouter([0, 1, 2], seed=7))
        trace = bursty_trace(obs_store.keys(), n=60)
        report = fleet.run(trace)
        assert report.fleet.dropped_requests > 0
        merged = pipelines[0]
        for pipeline in pipelines[1:]:
            merged.merge(pipeline)
        tracer = merged.tracer
        assert tracer.orphans() == []
        assert tracer.completed_requests == report.fleet.num_requests
        assert tracer.dropped_requests == report.fleet.dropped_requests
        # Every request in the trace shows up in exactly one shard's stream.
        assert {t.request_id for t in tracer.traces} == {
            request.request_id for request in trace
        }
        ids = [t.request_id for t in tracer.traces]
        assert len(ids) == len(set(ids))

    def test_engine_fleet_telemetry_is_complete(self, make_server, obs_store):
        """The fleet's own telemetry_factory path closes every tree too."""
        servers = [stress_server(make_server, RequestTracer()) for _ in range(2)]
        fleet = ShardedFleet(servers, router=ConsistentHashRouter([0, 1], seed=7))
        trace = bursty_trace(obs_store.keys(), n=40)
        report = fleet.run(trace, telemetry_factory=TelemetryPipeline)
        telemetry = fleet.last_telemetry
        assert telemetry is not None
        assert telemetry.tracer.orphans() == []
        assert telemetry.tracer.completed_requests == report.fleet.num_requests
        assert (
            telemetry.collector.registry.counter("drops")
            == report.fleet.dropped_requests
        )
