"""Pipeline/report tests: round-trips, dumps, invariance, fleet merge.

This file also carries two acceptance checks from the telemetry issue:
attaching telemetry must leave every serving report byte-identical, and
the per-window drop-rate series over ``serving_diurnal.json`` must
visibly track the configured sinusoid (peak-phase windows drop more than
trough-phase windows).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.api import Engine, EngineConfig
from repro.api.config import (
    ArrivalsConfig,
    BackboneConfig,
    FleetConfig,
    ObservabilityConfig,
    PolicyConfig,
    ServingConfig,
    StoreConfig,
)
from repro.api.reports import Report
from repro.obs.exporters import (
    METRICS_FILE,
    REPORT_FILE,
    SPANS_FILE,
    TelemetryPipeline,
    TelemetryReport,
    load_telemetry,
)
from repro.obs.tracing import RequestTrace
from repro.serving.control import EwmaAdmissionController
from repro.serving.fleet import FleetReport

REPO_ROOT = Path(__file__).resolve().parents[2]
CONFIG_DIR = REPO_ROOT / "examples" / "configs"


def engine_config(observability=None, fleet=None, num_requests=24):
    """A small engine scenario mirroring tests/api/test_engine.py."""
    return EngineConfig(
        resolutions=(24, 32, 48),
        scale_resolution=24,
        store=StoreConfig(
            profile="imagenet-like",
            overrides={
                "name": "obs-test",
                "num_classes": 4,
                "storage_resolution_mean": 96,
                "storage_resolution_std": 10,
            },
            num_images=8,
            seed=3,
        ),
        backbone=BackboneConfig(
            name="resnet-tiny", options={"num_classes": 4, "base_width": 4, "seed": 0}
        ),
        policy=PolicyConfig(name="static", resolution=32),
        ssim_thresholds={24: 0.9, 32: 0.92, 48: 0.95},
        serving=ServingConfig(
            arrivals=ArrivalsConfig(
                name="poisson",
                options={"rate_rps": 500.0, "seed": 5, "zipf_alpha": 1.0},
            ),
            num_requests=num_requests,
            observability=observability,
            fleet=fleet,
        ),
    )


def example_config(name, observability):
    """Load an example config and switch its telemetry section on."""
    with open(CONFIG_DIR / name, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    data["serving"]["observability"] = observability
    return EngineConfig.from_dict(data)


class TestPipeline:
    def test_everything_disabled_is_rejected(self):
        with pytest.raises(ValueError):
            TelemetryPipeline(metrics=False, tracing=False, profiling=False)

    def test_components_are_individually_switchable(self):
        pipeline = TelemetryPipeline(tracing=False, profiling=False)
        assert pipeline.collector is not None
        assert pipeline.tracer is None
        assert pipeline.profiler is None
        assert pipeline.observers == [pipeline.collector]
        report = pipeline.report()
        assert report.stages is None
        assert report.profile is None
        assert report.sampled_traces == 0

    def test_from_config_mirrors_the_section(self):
        section = ObservabilityConfig(
            profiling=False, window_s=0.02, sample_rate=0.5, seed=9
        )
        pipeline = TelemetryPipeline.from_config(section, max_batch_size=4)
        assert pipeline.window_s == 0.02
        assert pipeline.tracer.sample_rate == 0.5
        assert pipeline.tracer.seed == 9
        assert pipeline.profiler is None
        assert pipeline.collector.max_batch_size == 4

    def test_detach_leaves_the_server_clean(self, make_server, make_trace):
        pipeline = TelemetryPipeline()
        admission = EwmaAdmissionController(alpha=0.3, depth_threshold=10.0)
        server = make_server(admission=admission)
        pipeline.attach(server)
        server.run(make_trace(n=16))
        pipeline.detach(server)
        assert server.profiler is None
        assert pipeline.collector not in server._observers
        assert pipeline.tracer not in server._observers
        assert admission._metrics is None
        # A detached pipeline stops accumulating.
        arrivals = pipeline.collector.registry.counter("arrivals")
        server.run(make_trace(n=16))
        assert pipeline.collector.registry.counter("arrivals") == arrivals

    def test_ewma_gauge_matches_the_controller_state(self, make_server, make_trace):
        """bind_metrics publishes the controller's own smoothed depth."""
        pipeline = TelemetryPipeline(tracing=False, profiling=False)
        admission = EwmaAdmissionController(alpha=0.3, depth_threshold=4.0)
        server = make_server(admission=admission)
        pipeline.attach(server)
        server.run(make_trace(n=32, rate_rps=3000.0))
        registry = pipeline.collector.registry
        latest = registry.latest("admission.smoothed_queue_depth")
        assert latest is not None
        assert latest == pytest.approx(admission.smoothed_depth)
        # The gauge is windowed like everything else, and the EWMA smooths
        # the raw queue-depth signal (its max never exceeds the raw max).
        observed = [
            window.gauges["admission.smoothed_queue_depth"]
            for index in registry.window_indices()
            if (window := registry.window(index)) is not None
            and "admission.smoothed_queue_depth" in window.gauges
        ]
        assert observed  # published at least once
        raw_max = max(
            window.gauges["queue_depth"].max
            for index in registry.window_indices()
            if (window := registry.window(index)) is not None
            and "queue_depth" in window.gauges
        )
        assert max(gauge.max for gauge in observed) <= raw_max + 1e-9


class TestReport:
    @pytest.fixture
    def run_pipeline(self, make_server, make_trace):
        pipeline = TelemetryPipeline(window_s=0.005)
        server = make_server()
        pipeline.attach(server)
        slo = server.run(make_trace(n=24))
        pipeline.detach(server)
        return pipeline, slo

    def test_report_joins_the_unified_hierarchy(self, run_pipeline):
        pipeline, slo = run_pipeline
        report = pipeline.report()
        assert report.kind == "telemetry"
        decoded = Report.from_json(report.to_json())
        assert isinstance(decoded, TelemetryReport)
        assert decoded == report
        assert decoded.num_windows == report.num_windows
        assert decoded.duration_s == pytest.approx(
            report.windows[-1].end_s - report.windows[0].start_s
        )
        assert report.counters["completions"] == slo.num_requests
        assert report.stages.critical_stage is not None
        assert report.profile.events > 0

    def test_format_renders_every_section(self, run_pipeline):
        pipeline, _ = run_pipeline
        text = pipeline.report().format()
        for needle in (
            "telemetry windows",
            "window series",
            "stage breakdown",
            "critical stage",
            "sampled span trees",
            "simulator speed",
            "self time",
        ):
            assert needle in text, needle

    def test_write_and_load_round_trip(self, run_pipeline, tmp_path):
        pipeline, slo = run_pipeline
        out = tmp_path / "telemetry"
        paths = pipeline.write(str(out))
        assert set(paths) == {"metrics", "spans", "report"}
        assert sorted(p.name for p in out.iterdir()) == sorted(
            [METRICS_FILE, SPANS_FILE, REPORT_FILE]
        )
        windows = [
            json.loads(line)
            for line in (out / METRICS_FILE).read_text().splitlines()
        ]
        assert len(windows) == pipeline.report().num_windows
        assert sum(row["arrivals"] for row in windows) == slo.num_requests
        spans = [
            RequestTrace.from_dict(json.loads(line))
            for line in (out / SPANS_FILE).read_text().splitlines()
        ]
        assert len(spans) == len(pipeline.tracer.traces)
        loaded = load_telemetry(str(out))
        assert loaded == pipeline.report()

    def test_load_rejects_non_telemetry_reports(self, run_pipeline, tmp_path):
        _, slo = run_pipeline
        (tmp_path / REPORT_FILE).write_text(slo.to_json())
        with pytest.raises(ValueError, match="telemetry"):
            load_telemetry(str(tmp_path))


class TestEngineIntegration:
    def test_serve_populates_last_telemetry_and_leaves_the_report_alone(self):
        baseline = Engine(engine_config()).serve()
        engine = Engine(engine_config(observability=ObservabilityConfig()))
        report = engine.serve()
        assert report.to_json() == baseline.to_json()  # byte identity
        telemetry = engine.last_telemetry
        assert telemetry is not None
        assert telemetry.collector.registry.counter("completions") == (
            report.num_requests
        )
        assert Engine(engine_config()).last_telemetry is None

    def test_fleet_serve_merges_shard_telemetry(self):
        config = engine_config(
            observability=ObservabilityConfig(),
            fleet=FleetConfig(num_shards=3),
            num_requests=30,
        )
        engine = Engine(config)
        report = engine.serve()
        assert isinstance(report, FleetReport)
        telemetry = engine.last_telemetry
        assert telemetry is not None
        registry = telemetry.collector.registry
        assert registry.counter("arrivals") == 30
        assert registry.counter("completions") == report.fleet.num_requests
        assert telemetry.tracer.completed_requests == report.fleet.num_requests
        assert telemetry.tracer.orphans() == []
        # Shards simulate one shared timeline; merged windows stay contiguous.
        series = telemetry.collector.series()
        assert [w.index for w in series] == list(
            range(series[0].index, series[-1].index + 1)
        )
        # The profile folds all shards' event loops.
        assert telemetry.profiler.completed_requests == report.fleet.num_requests

    def test_fleet_report_is_unchanged_by_telemetry(self):
        trace_config = engine_config(fleet=FleetConfig(num_shards=2))
        baseline = Engine(trace_config).serve()
        observed = Engine(
            engine_config(
                observability=ObservabilityConfig(), fleet=FleetConfig(num_shards=2)
            )
        ).serve()
        assert baseline.to_json() == observed.to_json()


class TestDiurnalAcceptance:
    def test_drop_rate_tracks_the_sinusoid(self):
        """Peak-phase windows of serving_diurnal.json drop, troughs do not.

        The config's arrival rate follows a ``period_s=0.05`` sinusoid and
        telemetry windows are 0.01 s wide, so windows with
        ``index % 5 in (1, 2)`` sit on the rate peak and ``(3, 4)`` in the
        trough; the drop-rate series must separate the two phases.
        """
        engine = Engine(
            example_config("serving_diurnal.json", {"window_s": 0.01})
        )
        report = engine.serve()
        assert report.dropped_requests > 0  # overload is the scenario's point
        series = engine.last_telemetry.collector.series()
        peak = [w.drop_rate for w in series if w.index % 5 in (1, 2)]
        trough = [w.drop_rate for w in series if w.index % 5 in (3, 4)]
        assert peak and trough
        peak_mean = sum(peak) / len(peak)
        trough_mean = sum(trough) / len(trough)
        assert peak_mean > 0.2
        assert peak_mean > trough_mean + 0.1
        # Arrival rate itself must swing visibly window to window too.
        rates = [w.arrival_rate_rps for w in series]
        assert max(rates) > 2.0 * (min(rates) + 1.0)

    def test_window_rows_survive_the_jsonl_dump(self, tmp_path):
        engine = Engine(
            example_config("serving_diurnal.json", {"window_s": 0.01})
        )
        engine.serve()
        paths = engine.last_telemetry.write(str(tmp_path / "out"))
        rows = [
            json.loads(line)
            for line in Path(paths["metrics"]).read_text().splitlines()
        ]
        fields = {field.name for field in dataclasses.fields(type(
            engine.last_telemetry.collector.series()[0]
        ))}
        for row in rows:
            assert set(row) <= fields
        assert sum(row["drops"] for row in rows) > 0
