"""Metrics-layer tests: histogram accuracy, windowing, merging, collection.

The headline contract is percentile parity: the streaming histogram's
quantiles must sit within one log-spaced bin's relative width of the exact
``np.percentile`` answer ``serving/metrics.py`` computes, and that bound
must survive shard-wise merging (fleet percentiles are bin-count sums, not
averages of averages).
"""

import numpy as np
import pytest

from repro.obs.metrics import MetricsCollector, MetricsRegistry, StreamingHistogram

#: One bin's relative width at the default 64 bins/decade — the error bound.
BIN_WIDTH = 10.0 ** (1.0 / 64.0) - 1.0


class TestStreamingHistogram:
    def test_percentile_parity_with_exact_numpy(self):
        rng = np.random.default_rng(42)
        values = rng.lognormal(mean=-4.0, sigma=1.0, size=5000)
        histogram = StreamingHistogram()
        for value in values:
            histogram.observe(float(value))
        for q in (1, 25, 50, 90, 95, 99):
            exact = float(np.percentile(values, q))
            approx = histogram.quantile(q)
            assert approx == pytest.approx(exact, rel=BIN_WIDTH + 1e-9)

    def test_parity_matches_the_slo_report_percentiles(self, make_server, make_trace):
        """The bound holds against real served latencies, not just synthetic."""
        collector = MetricsCollector(window_s=0.01)
        server = make_server(observers=[collector])
        report = server.run(make_trace(n=30))
        histogram = collector.registry.histogram("latency_s")
        assert histogram.count == report.num_requests
        assert histogram.quantile(50) * 1e3 == pytest.approx(
            report.p50_latency_ms, rel=BIN_WIDTH + 1e-9
        )
        assert histogram.quantile(99) * 1e3 == pytest.approx(
            report.p99_latency_ms, rel=BIN_WIDTH + 1e-9
        )

    def test_merge_preserves_the_error_bound(self):
        rng = np.random.default_rng(7)
        left_values = rng.lognormal(mean=-3.0, sigma=0.8, size=2000)
        right_values = rng.lognormal(mean=-5.0, sigma=1.2, size=3000)
        left, right = StreamingHistogram(), StreamingHistogram()
        for value in left_values:
            left.observe(float(value))
        for value in right_values:
            right.observe(float(value))
        left.merge(right)
        combined = np.concatenate([left_values, right_values])
        assert left.count == combined.size
        assert left.mean == pytest.approx(float(np.mean(combined)))
        for q in (50, 99):
            assert left.quantile(q) == pytest.approx(
                float(np.percentile(combined, q)), rel=BIN_WIDTH + 1e-9
            )

    def test_quantiles_clamp_to_observed_range(self):
        histogram = StreamingHistogram()
        for value in (0.004, 0.005, 0.006):
            histogram.observe(value)
        assert histogram.quantile(0) >= histogram.min == 0.004
        assert histogram.quantile(100) <= histogram.max == 0.006

    def test_empty_and_invalid(self):
        histogram = StreamingHistogram()
        assert histogram.quantile(50) is None
        assert histogram.mean is None
        with pytest.raises(ValueError):
            histogram.observe(-1.0)
        with pytest.raises(ValueError):
            histogram.quantile(101)
        with pytest.raises(ValueError):
            histogram.merge(StreamingHistogram(bins_per_decade=32))
        with pytest.raises(ValueError):
            StreamingHistogram(min_value=0.0)


class TestMetricsRegistry:
    def test_counters_land_in_total_and_window(self):
        registry = MetricsRegistry(window_s=0.01)
        registry.inc("arrivals", 0.001)
        registry.inc("arrivals", 0.012)
        registry.inc("arrivals", 0.013, amount=2)
        assert registry.counter("arrivals") == 4
        assert registry.counter("unknown") == 0
        assert registry.window_indices() == [0, 1]
        assert registry.window(0).counters["arrivals"] == 1
        assert registry.window(1).counters["arrivals"] == 3

    def test_latest_gauge(self):
        registry = MetricsRegistry(window_s=0.01)
        assert registry.latest("queue_depth") is None
        registry.set_gauge("queue_depth", 0.002, 3.0)
        registry.set_gauge("queue_depth", 0.004, 7.0)
        assert registry.latest("queue_depth") == 7.0
        window = registry.window(0).gauges["queue_depth"]
        assert window.count == 2
        assert window.max == 7.0

    def test_merge_aligns_windows_by_index(self):
        left, right = MetricsRegistry(0.01), MetricsRegistry(0.01)
        left.inc("arrivals", 0.005)
        right.inc("arrivals", 0.006)
        right.inc("arrivals", 0.015)
        right.observe("latency_s", 0.006, 0.002)
        left.merge(right)
        assert left.counter("arrivals") == 3
        assert left.window(0).counters["arrivals"] == 2
        assert left.window(1).counters["arrivals"] == 1
        assert left.histogram("latency_s").count == 1
        with pytest.raises(ValueError):
            left.merge(MetricsRegistry(0.02))


class TestMetricsCollector:
    def test_totals_match_the_slo_report(self, make_server, make_trace):
        collector = MetricsCollector(window_s=0.01, max_batch_size=4)
        server = make_server(observers=[collector])
        trace = make_trace(n=24)
        report = server.run(trace)
        registry = collector.registry
        assert registry.counter("arrivals") == len(trace)
        assert registry.counter("completions") == report.num_requests
        assert registry.counter("drops") == report.dropped_requests
        assert registry.counter("bytes_from_store") == report.bytes_from_store
        assert registry.counter("bytes_from_cache") == report.bytes_from_cache

    def test_series_is_gap_filled_and_consistent(self, make_server, make_trace):
        collector = MetricsCollector(window_s=0.005, max_batch_size=4)
        server = make_server(observers=[collector])
        trace = make_trace(n=24)
        report = server.run(trace)
        series = collector.series()
        assert series  # at least one window
        indices = [window.index for window in series]
        assert indices == list(range(indices[0], indices[-1] + 1))
        assert sum(window.arrivals for window in series) == len(trace)
        assert sum(window.completions for window in series) == report.num_requests
        for window in series:
            assert window.end_s == pytest.approx(window.start_s + 0.005)
            assert 0.0 <= window.drop_rate <= 1.0
            if window.cache_hit_rate is not None:
                assert 0.0 <= window.cache_hit_rate <= 1.0
            if window.batch_occupancy is not None:
                assert 0.0 < window.batch_occupancy <= 1.0

    def test_shard_merge_equals_one_collector_over_both_streams(
        self, make_server, make_trace
    ):
        """Merging per-shard collectors is exactly the fleet-wide fold."""
        trace_a, trace_b = make_trace(n=16, seed=5), make_trace(n=16, seed=9)
        shard_a, shard_b = MetricsCollector(0.01, 4), MetricsCollector(0.01, 4)
        make_server(observers=[shard_a]).run(trace_a)
        make_server(observers=[shard_b]).run(trace_b)
        shard_a.merge(shard_b)

        union = MetricsCollector(0.01, 4)
        make_server(observers=[union]).run(trace_a)
        # Feed the second stream through the same collector (commutative fold).
        second = make_server(observers=[union])
        second.run(trace_b)
        # Counters are folds, so union totals must equal the merged totals.
        for name in ("arrivals", "completions", "batch_flushes", "bytes_from_store"):
            assert shard_a.registry.counter(name) == union.registry.counter(name)
        merged_series = shard_a.series()
        union_series = union.series()
        assert [w.arrivals for w in merged_series] == [w.arrivals for w in union_series]
        assert [w.p99_latency_ms for w in merged_series] == [
            w.p99_latency_ms for w in union_series
        ]

    def test_collector_never_perturbs_the_run(self, make_server, make_trace):
        trace = make_trace(n=24)
        bare = make_server().run(trace)
        observed = make_server(observers=[MetricsCollector(0.01)]).run(trace)
        assert bare.to_json() == observed.to_json()
