"""Profiler tests: self-time accounting, merging, and server integration."""

import time

import pytest

from repro.obs.profiling import Profiler, ProfileStats


class TestScopes:
    def test_nested_scopes_report_self_time(self):
        profiler = Profiler()
        with profiler.scope("outer"):
            time.sleep(0.02)
            with profiler.scope("inner"):
                time.sleep(0.02)
        inner = profiler.self_seconds["inner"]
        outer = profiler.self_seconds["outer"]
        assert inner >= 0.02
        # The child's elapsed time was subtracted from the parent's slot.
        assert outer >= 0.015
        assert outer < 0.04

    def test_repeated_scopes_accumulate(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.scope("work"):
                time.sleep(0.005)
        assert profiler.self_seconds["work"] >= 0.015

    def test_scope_survives_exceptions(self):
        profiler = Profiler()
        with pytest.raises(RuntimeError):
            with profiler.scope("boom"):
                raise RuntimeError("boom")
        assert "boom" in profiler.self_seconds
        assert profiler._stack == []

    def test_self_times_sum_to_at_most_wall_time(self):
        profiler = Profiler()
        profiler.start_run()
        with profiler.scope("a"):
            time.sleep(0.01)
            with profiler.scope("b"):
                time.sleep(0.01)
        profiler.stop_run(sim_seconds=1.0)
        assert sum(profiler.self_seconds.values()) <= profiler.wall_seconds + 1e-6


class TestStats:
    def test_zero_length_run_has_none_rates(self):
        stats = Profiler().stats()
        assert stats.events_per_sec is None
        assert stats.requests_per_sec is None
        assert stats.sim_time_ratio is None
        assert stats.self_seconds == {}

    def test_stats_rates(self):
        profiler = Profiler()
        profiler.start_run()
        time.sleep(0.01)
        profiler.events = 100
        profiler.completed_requests = 10
        profiler.stop_run(sim_seconds=0.5)
        stats = profiler.stats()
        assert stats.events == 100
        assert stats.events_per_sec == pytest.approx(100 / stats.wall_seconds)
        assert stats.requests_per_sec == pytest.approx(10 / stats.wall_seconds)
        assert stats.sim_time_ratio == pytest.approx(0.5 / stats.wall_seconds)
        assert isinstance(stats, ProfileStats)

    def test_merge_sums_everything(self):
        left, right = Profiler(), Profiler()
        for profiler, events in ((left, 10), (right, 30)):
            profiler.start_run()
            profiler.events = events
            profiler.completed_requests = events // 2
            profiler.stop_run(sim_seconds=0.1)
            profiler.self_seconds["storage-read"] = 0.01
        left.merge(right)
        assert left.events == 40
        assert left.completed_requests == 20
        assert left.sim_seconds == pytest.approx(0.2)
        assert left.self_seconds["storage-read"] == pytest.approx(0.02)


class TestServerIntegration:
    def test_server_run_populates_the_profiler(self, make_server, make_trace):
        profiler = Profiler()
        server = make_server(profiler=profiler)
        report = server.run(make_trace(n=24))
        stats = profiler.stats()
        assert stats.completed_requests == report.num_requests
        # Every completion is at least one heap pop, plus batch/flush events.
        assert stats.events > report.num_requests
        assert stats.wall_seconds > 0
        assert stats.events_per_sec > 0
        assert stats.sim_seconds == pytest.approx(report.duration_s, rel=0.2)
        for name in ("storage-read", "batch-pricing", "backbone-execute"):
            assert name in stats.self_seconds, name
            assert stats.self_seconds[name] >= 0.0

    def test_profiler_resets_between_runs(self, make_server, make_trace):
        profiler = Profiler()
        server = make_server(profiler=profiler)
        trace = make_trace(n=16)
        server.run(trace)
        first = profiler.stats()
        server.run(trace)
        second = profiler.stats()
        # Counters cover one run at a time, not the cumulative history.
        assert second.events == first.events
        assert second.completed_requests == first.completed_requests

    def test_profiled_run_report_is_unchanged(self, make_server, make_trace):
        trace = make_trace(n=24)
        bare = make_server().run(trace)
        profiled = make_server(profiler=Profiler()).run(trace)
        assert bare.to_json() == profiled.to_json()
