"""Tracer tests: span trees vs served records, sampling, stage breakdowns."""

import pytest

from repro.obs.tracing import (
    STAGES,
    RequestTrace,
    RequestTracer,
    Span,
    sampled,
)
from repro.serving.control import EwmaAdmissionController


class TestSpanTrees:
    def test_spans_match_the_served_record_timeline(self, make_server, make_trace):
        tracer = RequestTracer()
        server = make_server(observers=[tracer])
        report = server.run(make_trace(n=24))
        records = {record.request_id: record for record in server.last_served}
        served = [trace for trace in tracer.traces if trace.outcome == "served"]
        assert len(served) == report.num_requests
        for trace in served:
            record = records[trace.request_id]
            assert trace.key == record.key
            assert trace.root.start_s == record.arrival_time
            assert trace.root.end_s == record.completion_time
            assert trace.root.duration_s == pytest.approx(record.latency)
            ingest = trace.stage("ingest")
            batch_wait = trace.stage("batch-wait")
            execute = trace.stage("execute")
            assert ingest.end_s == batch_wait.start_s == record.ready_time
            assert batch_wait.end_s == execute.start_s == record.dispatch_time
            assert execute.end_s == record.completion_time
            # The cache probe is an instant child of ingest.
            probes = [c for c in ingest.children if c.name == "cache-probe"]
            assert len(probes) == 1
            assert probes[0].start_s == probes[0].end_s
            assert ingest.start_s <= probes[0].start_s <= ingest.end_s

    def test_dropped_requests_get_flat_traces_with_reasons(
        self, make_server, make_trace
    ):
        tracer = RequestTracer()
        admission = EwmaAdmissionController(alpha=1.0, depth_threshold=1.0)
        server = make_server(observers=[tracer], admission=admission)
        report = server.run(make_trace(n=32, rate_rps=4000.0))
        assert report.dropped_requests > 0  # the point of the tight threshold
        dropped = [trace for trace in tracer.traces if trace.outcome == "dropped"]
        assert len(dropped) == report.dropped_requests == tracer.dropped_requests
        for trace in dropped:
            assert trace.reason == "queue-depth"
            assert trace.root.children == ()
            assert trace.root.end_s >= trace.root.start_s

    def test_no_orphans_after_a_complete_run(self, make_server, make_trace):
        tracer = RequestTracer()
        make_server(observers=[tracer]).run(make_trace(n=24))
        assert tracer.orphans() == []

    def test_trace_round_trips_through_dicts(self, make_server, make_trace):
        tracer = RequestTracer()
        make_server(observers=[tracer]).run(make_trace(n=12))
        for trace in tracer.traces:
            assert RequestTrace.from_dict(trace.to_dict()) == trace


class TestSampling:
    def test_sampled_is_deterministic_and_rate_one_keeps_all(self):
        decisions = [sampled(0, request_id, 0.4) for request_id in range(200)]
        assert decisions == [sampled(0, request_id, 0.4) for request_id in range(200)]
        assert any(decisions) and not all(decisions)
        assert all(sampled(3, request_id, 1.0) for request_id in range(50))
        # The retained fraction is in the right ballpark for a fair hash.
        assert 0.2 < sum(decisions) / len(decisions) < 0.6

    def test_retained_set_matches_the_sampled_predicate(
        self, make_server, make_trace
    ):
        tracer = RequestTracer(sample_rate=0.4, seed=11)
        server = make_server(observers=[tracer])
        trace_in = make_trace(n=40)
        report = server.run(trace_in)
        all_ids = {request.request_id for request in trace_in}
        kept = {trace.request_id for trace in tracer.traces}
        assert kept == {rid for rid in all_ids if sampled(11, rid, 0.4)}
        assert len(kept) < len(all_ids)  # sampling actually thinned the set
        # Totals still cover every completion, not just the sampled ones.
        assert tracer.completed_requests == report.num_requests
        assert tracer.dropped_requests == report.dropped_requests

    def test_breakdown_is_exact_regardless_of_sampling(
        self, make_server, make_trace
    ):
        full = RequestTracer(sample_rate=1.0)
        thin = RequestTracer(sample_rate=0.25, seed=3)
        trace_in = make_trace(n=40)
        make_server(observers=[full, thin]).run(trace_in)
        assert thin.stage_totals == full.stage_totals
        assert thin.breakdown() == full.breakdown()

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            RequestTracer(sample_rate=0.0)
        with pytest.raises(ValueError):
            RequestTracer(sample_rate=1.5)


class TestBreakdown:
    def test_breakdown_matches_the_served_records(self, make_server, make_trace):
        tracer = RequestTracer()
        server = make_server(observers=[tracer])
        report = server.run(make_trace(n=24))
        records = server.last_served
        breakdown = tracer.breakdown()
        assert [stage.name for stage in breakdown.stages] == list(STAGES)
        expected = {
            "ingest": sum(r.ready_time - r.arrival_time for r in records),
            "batch-wait": sum(r.dispatch_time - r.ready_time for r in records),
            "execute": sum(r.completion_time - r.dispatch_time for r in records),
        }
        by_name = {stage.name: stage for stage in breakdown.stages}
        for name, total in expected.items():
            assert by_name[name].total_s == pytest.approx(total)
            assert by_name[name].count == report.num_requests
        assert breakdown.total_latency_s == pytest.approx(
            sum(record.latency for record in records)
        )
        assert sum(stage.share for stage in breakdown.stages) == pytest.approx(1.0)
        assert breakdown.critical_stage == max(expected, key=expected.get)

    def test_empty_breakdown_is_well_defined(self):
        breakdown = RequestTracer().breakdown()
        assert breakdown.critical_stage is None
        assert breakdown.total_latency_s == 0.0
        assert all(stage.count == 0 for stage in breakdown.stages)


class TestMerge:
    def test_merge_is_the_fleet_wide_union(self, make_server, make_trace):
        left, right = RequestTracer(seed=2), RequestTracer(seed=2)
        make_server(observers=[left]).run(make_trace(n=16, seed=5))
        make_server(observers=[right]).run(make_trace(n=16, seed=9))
        left_total = left.completed_requests + left.dropped_requests
        right_total = right.completed_requests + right.dropped_requests
        left_count = len(left.traces)
        left.merge(right)
        assert len(left.traces) == left_count + len(right.traces)
        assert left.completed_requests + left.dropped_requests == (
            left_total + right_total
        )
        ids = [trace.request_id for trace in left.traces]
        assert ids == sorted(ids)
        assert left.orphans() == []

    def test_span_helper_duration(self):
        span = Span(name="x", start_s=1.0, end_s=3.5)
        assert span.duration_s == 2.5
        assert RequestTrace(
            request_id=1, key="k", outcome="served", reason=None, root=span
        ).stage("missing") is None
