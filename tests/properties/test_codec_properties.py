"""Property-based tests (hypothesis) for the codec and image metrics."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codec.dct import block_dct2, block_idct2, blockify, unblockify
from repro.codec.progressive import ProgressiveEncoder
from repro.codec.scans import spectral_bands
from repro.codec.size_model import estimate_band_bits, magnitude_category
from repro.imaging.metrics import psnr, ssim
from repro.imaging.resize import resize

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def small_images(draw):
    height = draw(st.integers(min_value=16, max_value=48))
    width = draw(st.integers(min_value=16, max_value=48))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    # Smooth random field: random low-res field upsampled, plus mild noise.
    base = rng.random((4, 4, 3))
    image = resize(base, (height, width), method="bilinear")
    image = np.clip(image + rng.normal(0, 0.03, size=image.shape), 0.0, 1.0)
    return image


class TestDCTProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(**_SETTINGS)
    def test_dct_roundtrip_is_identity(self, seed):
        blocks = np.random.default_rng(seed).normal(size=(4, 8, 8))
        np.testing.assert_allclose(block_idct2(block_dct2(blocks)), blocks, atol=1e-10)

    @given(st.integers(min_value=9, max_value=70), st.integers(min_value=9, max_value=70),
           st.integers(min_value=0, max_value=1000))
    @settings(**_SETTINGS)
    def test_blockify_roundtrip(self, height, width, seed):
        plane = np.random.default_rng(seed).random((height, width))
        blocks, padded = blockify(plane)
        np.testing.assert_array_equal(unblockify(blocks, padded, plane.shape), plane)


class TestScanProperties:
    @given(st.integers(min_value=2, max_value=16))
    @settings(**_SETTINGS)
    def test_spectral_bands_partition_the_spectrum(self, num_scans):
        bands = spectral_bands(num_scans)
        covered = []
        for band in bands:
            covered.extend(range(band.start, band.end + 1))
        assert sorted(covered) == list(range(64))
        assert len(covered) == 64  # no overlaps


class TestSizeModelProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(**_SETTINGS)
    def test_magnitude_category_is_bit_length(self, value):
        assert magnitude_category(np.array([value]))[0] == int(value).bit_length()

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=1, max_value=12))
    @settings(**_SETTINGS)
    def test_band_bits_monotone_in_magnitude(self, seed, width):
        rng = np.random.default_rng(seed)
        coefficients = rng.integers(-8, 9, size=(6, width))
        assert estimate_band_bits(2 * coefficients) >= estimate_band_bits(coefficients)


class TestProgressiveProperties:
    @given(small_images(), st.integers(min_value=55, max_value=95))
    @settings(**_SETTINGS)
    def test_byte_accounting_and_quality_monotone(self, image, quality):
        encoded = ProgressiveEncoder(quality=quality).encode(image)
        previous_bytes = 0
        previous_ssim = -1.0
        for scans in range(1, encoded.num_scans + 1):
            cumulative = encoded.cumulative_bytes(scans)
            assert cumulative > previous_bytes
            previous_bytes = cumulative
            score = ssim(image, encoded.decode(scans))
            assert score >= previous_ssim - 0.02  # allow tiny non-monotonicity
            previous_ssim = score
        assert encoded.cumulative_bytes(encoded.num_scans) == encoded.total_bytes

    @given(small_images())
    @settings(**_SETTINGS)
    def test_decode_stays_in_unit_range(self, image):
        encoded = ProgressiveEncoder(quality=75).encode(image)
        for scans in (1, encoded.num_scans):
            decoded = encoded.decode(scans)
            assert decoded.min() >= 0.0 and decoded.max() <= 1.0
            assert decoded.shape == image.shape


class TestMetricProperties:
    @given(small_images())
    @settings(**_SETTINGS)
    def test_ssim_identity_and_symmetry(self, image):
        assert ssim(image, image) == 1.0
        noisy = np.clip(image + 0.05, 0.0, 1.0)
        assert abs(ssim(image, noisy) - ssim(noisy, image)) < 1e-9

    @given(small_images(), st.floats(min_value=0.01, max_value=0.2))
    @settings(**_SETTINGS)
    def test_psnr_positive_for_bounded_noise(self, image, sigma):
        rng = np.random.default_rng(0)
        noisy = np.clip(image + rng.normal(0, sigma, image.shape), 0.0, 1.0)
        if not np.array_equal(noisy, image):
            assert psnr(image, noisy) > 0.0
