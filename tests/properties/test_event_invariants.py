"""Property-based invariants of the serving event loop, on both cores.

The golden suite pins eight fixed configurations; hypothesis explores the
traffic/batching parameter space around them and checks the properties no
configuration may violate:

* the fast core and the scalar core produce *equal* ``SLOReport`` objects
  for the same traffic (the differential property the golden files sample);
* ``stream()`` and ``trace()`` of every arrival process are value-identical
  arrival for arrival;
* observed event timestamps are non-decreasing within a run;
* conservation: every arrival is either completed or dropped, exactly once;
* every flushed batch respects ``max_batch_size``.

Events are collected through a subscribed observer, which deliberately
forces the fast core's emit path on — so the invariants hold with event
elision disabled; the first property covers the fully-elided loop, where
the report itself is the only observable.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codec.progressive import ProgressiveEncoder
from repro.core.policies import StaticResolutionPolicy
from repro.data.dataset import SyntheticDataset
from repro.data.profiles import IMAGENET_LIKE
from repro.nn.resnet import resnet_tiny
from repro.serving.arrivals import OnOffArrivals, PoissonArrivals
from repro.serving.autoscale import ThresholdAutoscaler
from repro.serving.batcher import LinearBatchCost
from repro.serving.cache import ScanCache
from repro.serving.elastic import ElasticFleet
from repro.serving.events import (
    BatchFlushed,
    RequestArrived,
    RequestCompleted,
    RequestDropped,
    ServerEvent,
    ServerObserver,
    ShardAdded,
    ShardRemoved,
)
from repro.serving.fleet import ConsistentHashRouter
from repro.serving.server import InferenceServer, ServerConfig
from repro.serving.workload import ArrivalStream, DiurnalArrivals
from repro.storage.policy import ScanReadPolicy
from repro.storage.store import ImageStore

RESOLUTIONS = (24, 32, 48)

#: Shared store/backbone: rendering and encoding images dominates example
#: runtime, so every hypothesis example reuses one small catalogue.  The
#: scalar/fast differential builds its own stores (the decode cache is
#: per-store state the two runs must not share).
_FIXTURES: dict = {}


def _profile():
    profile = IMAGENET_LIKE
    return type(profile)(
        name="property-tiny",
        num_classes=4,
        storage_resolution_mean=72,
        storage_resolution_std=6,
        object_scale_mean=profile.object_scale_mean,
        object_scale_std=profile.object_scale_std,
        texture_weight=profile.texture_weight,
        detail_sensitivity=profile.detail_sensitivity,
    )


def _samples():
    if "samples" not in _FIXTURES:
        dataset = SyntheticDataset(_profile(), size=6, seed=13)
        _FIXTURES["samples"] = [
            (f"img{sample.index}", sample.render(), sample.label) for sample in dataset
        ]
    return _FIXTURES["samples"]


def _fresh_store() -> ImageStore:
    store = ImageStore(encoder=ProgressiveEncoder(quality=85))
    for key, image, label in _samples():
        store.put(key, image, label=label)
    return store


def _backbone():
    if "backbone" not in _FIXTURES:
        _FIXTURES["backbone"] = resnet_tiny(num_classes=4, base_width=4, seed=0)
    return _FIXTURES["backbone"]


def _server(store: ImageStore, fast_core: bool, **config) -> InferenceServer:
    defaults = dict(
        resolutions=RESOLUTIONS,
        scale_resolution=24,
        num_workers=2,
        max_batch_size=4,
        max_wait_s=0.004,
        fast_core=fast_core,
    )
    defaults.update(config)
    return InferenceServer(
        store,
        _backbone(),
        StaticResolutionPolicy(32),
        ServerConfig(**defaults),
        read_policy=ScanReadPolicy(),
        cache=ScanCache(capacity_bytes=150_000),
        batch_cost=LinearBatchCost(),
    )


class _Recorder(ServerObserver):
    """Collect the raw event stream for invariant checks."""

    def __init__(self) -> None:
        self.events: list[ServerEvent] = []

    def on_event(self, event: ServerEvent) -> None:
        self.events.append(event)


traffic = st.fixed_dictionaries(
    {
        "rate_rps": st.floats(min_value=50.0, max_value=3000.0),
        "seed": st.integers(min_value=0, max_value=2**16),
        "zipf_alpha": st.floats(min_value=0.0, max_value=1.5),
        "num_requests": st.integers(min_value=1, max_value=48),
    }
)

knobs = st.fixed_dictionaries(
    {
        "max_batch_size": st.integers(min_value=1, max_value=6),
        "num_workers": st.integers(min_value=1, max_value=3),
        "max_wait_s": st.floats(min_value=0.0, max_value=0.01),
    }
)

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(params=traffic, config=knobs)
@_SETTINGS
def test_fast_and_scalar_cores_agree(params, config) -> None:
    """The differential property: both cores fold to equal SLO reports."""
    process = PoissonArrivals(
        rate_rps=params["rate_rps"],
        seed=params["seed"],
        zipf_alpha=params["zipf_alpha"],
    )
    reports = {}
    for fast_core in (False, True):
        store = _fresh_store()
        keys = store.keys()
        trace = (
            process.stream(keys, params["num_requests"])
            if fast_core
            else process.trace(keys, params["num_requests"])
        )
        server = _server(store, fast_core, **config)
        reports[fast_core] = server.run(trace)
    assert reports[True] == reports[False]


@given(params=traffic)
@_SETTINGS
def test_stream_matches_trace(params) -> None:
    """``stream()`` materializes the exact requests ``trace()`` builds."""
    keys = [key for key, _, _ in _samples()]
    processes = [
        PoissonArrivals(
            rate_rps=params["rate_rps"],
            seed=params["seed"],
            zipf_alpha=params["zipf_alpha"],
        ),
        OnOffArrivals(
            on_rate_rps=params["rate_rps"],
            mean_on_s=0.05,
            mean_off_s=0.1,
            seed=params["seed"],
            zipf_alpha=params["zipf_alpha"],
        ),
    ]
    processes.append(DiurnalArrivals(base=processes[0], period_s=5.0, amplitude=0.4))
    for process in processes:
        stream = process.stream(keys, params["num_requests"])
        assert isinstance(stream, ArrivalStream)
        assert list(stream) == process.trace(keys, params["num_requests"])
        assert stream.is_sorted


@given(params=traffic, config=knobs)
@_SETTINGS
def test_event_stream_invariants(params, config) -> None:
    """Ordering, conservation and batch bounds hold under observation."""
    process = PoissonArrivals(
        rate_rps=params["rate_rps"],
        seed=params["seed"],
        zipf_alpha=params["zipf_alpha"],
    )
    for fast_core in (False, True):
        store = _fresh_store()
        recorder = _Recorder()
        server = _server(store, fast_core, **config)
        server.subscribe(recorder)
        trace = process.stream(store.keys(), params["num_requests"])
        report = server.run(trace)

        times = [event.time for event in recorder.events]
        assert times == sorted(times), "events must be time-ordered"

        arrivals = sum(1 for e in recorder.events if isinstance(e, RequestArrived))
        completions = sum(
            1 for e in recorder.events if isinstance(e, RequestCompleted)
        )
        drops = sum(1 for e in recorder.events if isinstance(e, RequestDropped))
        assert arrivals == params["num_requests"]
        assert arrivals == completions + drops
        assert report.num_requests == completions
        assert report.dropped_requests == drops

        for event in recorder.events:
            if isinstance(event, BatchFlushed):
                assert 1 <= event.batch_size <= config["max_batch_size"]
            if isinstance(event, RequestCompleted):
                record = event.record
                assert record.arrival_time <= record.ready_time
                assert record.ready_time <= record.dispatch_time
                assert record.dispatch_time <= record.completion_time

        stats = server.cache.stats
        assert stats.hits + stats.misses >= 0
        assert report.num_requests == len(server.last_served)


elastic_traffic = st.fixed_dictionaries(
    {
        "rate_rps": st.floats(min_value=500.0, max_value=4000.0),
        "seed": st.integers(min_value=0, max_value=2**16),
        "num_requests": st.integers(min_value=12, max_value=40),
    }
)


@given(params=elastic_traffic)
@_SETTINGS
def test_invariants_hold_across_dynamic_topology_boundaries(params) -> None:
    """Ordering and conservation survive mid-run ShardAdded/ShardRemoved.

    An aggressive threshold autoscaler forces topology changes while traffic
    is in flight; the topology event stream must stay time-ordered, every
    resize must move the live shard count by exactly one, and the arrival
    conservation law (served + dropped == offered, no duplicates) must hold
    across every boundary.
    """
    horizon = params["num_requests"] / params["rate_rps"]
    fleet = ElasticFleet(
        lambda shard_id: _server(_fresh_store(), fast_core=True),
        2,
        ConsistentHashRouter(range(2), seed=11),
        autoscale=ThresholdAutoscaler(
            high_rps_per_shard=params["rate_rps"] / 4.0,
            low_rps_per_shard=params["rate_rps"] / 32.0,
        ),
        autoscale_interval_s=max(horizon / 8.0, 1e-4),
        min_shards=1,
        max_shards=6,
    )
    process = PoissonArrivals(rate_rps=params["rate_rps"], seed=params["seed"])
    store_keys = [key for key, _, _ in _samples()]
    report = fleet.run(process.trace(store_keys, params["num_requests"]))

    times = [event.time for event in fleet.last_events]
    assert times == sorted(times), "topology events must be time-ordered"
    live = 2
    for event in fleet.last_events:
        if isinstance(event, ShardAdded):
            live += 1
            assert event.num_shards == live
        elif isinstance(event, ShardRemoved):
            live -= 1
            assert event.num_shards == live
        assert 1 <= live <= 6
    assert report.final_num_shards == live

    served = [record.request_id for record in fleet.last_served]
    dropped = [request.request_id for request, _ in fleet.last_dropped]
    assert len(served) == len(set(served))
    assert set(served) | set(dropped) == set(range(params["num_requests"]))
    assert set(served) & set(dropped) == set()
    assert report.shards_added == sum(
        isinstance(e, ShardAdded) for e in fleet.last_events
    )
    assert report.shards_removed == sum(
        isinstance(e, ShardRemoved) for e in fleet.last_events
    )


@pytest.mark.parametrize("fast_core", [False, True])
def test_conservation_with_drops(fast_core: bool) -> None:
    """Admission drops conserve requests on both cores (fixed heavy case)."""
    from repro.serving.control import EwmaAdmissionController

    store = _fresh_store()
    server = InferenceServer(
        store,
        _backbone(),
        StaticResolutionPolicy(32),
        ServerConfig(
            resolutions=RESOLUTIONS,
            scale_resolution=24,
            num_workers=1,
            max_batch_size=2,
            max_wait_s=0.002,
            fast_core=fast_core,
        ),
        read_policy=ScanReadPolicy(),
        batch_cost=LinearBatchCost(),
        admission=EwmaAdmissionController(alpha=0.5, depth_threshold=2.0),
    )
    trace = PoissonArrivals(rate_rps=5000.0, seed=3, zipf_alpha=0.8).stream(
        store.keys(), 80
    )
    report = server.run(trace)
    assert report.dropped_requests > 0
    assert report.num_requests + report.dropped_requests == 80
