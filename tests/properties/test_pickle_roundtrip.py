"""Pickle- and dict-round-trip safety for the objects sweeps ship over IPC.

The parallel sweep runner moves work between processes, so every object on
that path — reports, sweep points, cells, tables — must survive
``pickle.loads(pickle.dumps(x)) == x`` (what ``multiprocessing`` does to
results) and the JSON-dict round trip the per-cell files use.
"""

import pickle

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.engine import SweepPoint
from repro.api.reports import Report
from repro.serving.fleet import FleetReport, ShardReport
from repro.serving.metrics import SLOReport
from repro.sweep.grid import SweepCell
from repro.sweep.results import combine_cells, cell_payload

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_counts = st.integers(min_value=0, max_value=10_000)
_times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
_rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def slo_reports(draw):
    num_requests = draw(st.integers(min_value=1, max_value=10_000))
    maybe = lambda strategy: draw(st.one_of(st.none(), strategy))  # noqa: E731
    return SLOReport(
        num_requests=num_requests,
        duration_s=draw(_times),
        throughput_rps=draw(_times),
        mean_latency_ms=maybe(_times),
        p50_latency_ms=maybe(_times),
        p95_latency_ms=maybe(_times),
        p99_latency_ms=maybe(_times),
        mean_queue_wait_ms=maybe(_times),
        mean_batch_size=maybe(_times),
        accuracy=maybe(_rates),
        bytes_from_store=draw(_counts),
        bytes_from_cache=draw(_counts),
        baseline_bytes=draw(_counts),
        bytes_saved=draw(_counts),
        relative_bytes_saved=draw(_rates),
        transfer_seconds=draw(_times),
        transfer_dollars=draw(_times),
        cache_hit_rate=maybe(_rates),
        degraded_requests=draw(_counts),
        resolution_histogram=draw(
            st.dictionaries(st.sampled_from([24, 32, 48]), _counts, max_size=3)
        ),
        dropped_requests=draw(_counts),
    )


@st.composite
def fleet_reports(draw):
    shards = tuple(
        ShardReport(shard_id=shard_id, num_requests=report.num_requests, report=report)
        for shard_id, report in enumerate(
            draw(st.lists(slo_reports(), min_size=1, max_size=3))
        )
    )
    return FleetReport(
        num_shards=len(shards),
        shards=shards,
        fleet=draw(slo_reports()),
        load_imbalance=draw(st.floats(min_value=1.0, max_value=4.0, allow_nan=False)),
        idle_shards=draw(st.integers(min_value=0, max_value=2)),
    )


_reports = st.one_of(slo_reports(), fleet_reports())

_override_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    st.sampled_from(["scan-lru", "ewma", "none"]),
    st.booleans(),
)
_overrides = st.dictionaries(
    st.sampled_from(
        [
            "serving.cache.capacity_bytes",
            "serving.num_workers",
            "serving.admission.name",
            "store.seed",
        ]
    ),
    _override_values,
    min_size=1,
    max_size=3,
)


class TestReportRoundTrips:
    @given(_reports)
    @settings(**_SETTINGS)
    def test_pickle_roundtrip_preserves_equality(self, report):
        assert pickle.loads(pickle.dumps(report)) == report

    @given(_reports)
    @settings(**_SETTINGS)
    def test_dict_roundtrip_preserves_equality(self, report):
        assert Report.from_dict(report.to_dict()) == report


class TestSweepObjectRoundTrips:
    @given(_overrides, _reports)
    @settings(**_SETTINGS)
    def test_sweep_point_pickle_roundtrip(self, overrides, report):
        point = SweepPoint(overrides=overrides, report=report)
        assert pickle.loads(pickle.dumps(point)) == point

    @given(st.integers(min_value=0, max_value=1000), _overrides)
    @settings(**_SETTINGS)
    def test_sweep_cell_pickle_roundtrip(self, index, overrides):
        cell = SweepCell(index=index, overrides=overrides, seed=index * 7)
        assert pickle.loads(pickle.dumps(cell)) == cell

    @given(st.lists(_reports, min_size=1, max_size=4))
    @settings(**_SETTINGS)
    def test_results_table_pickle_roundtrip(self, reports):
        table = combine_cells(
            cell_payload(index, index, {"a.x": index}, report)
            for index, report in enumerate(reports)
        )
        assert pickle.loads(pickle.dumps(table)) == table
