"""Property-based tests for the hardware model, pareto analysis and surrogate."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import ParetoPoint, pareto_frontier
from repro.hwsim.kernels import KernelConfig
from repro.hwsim.machine import AMD_2990WX, INTEL_4790K
from repro.hwsim.perf_model import execution_time_seconds
from repro.hwsim.workload import ConvWorkload
from repro.surrogate.quality import QualityDegradationModel
from repro.surrogate.static_accuracy import StaticAccuracyModel

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@st.composite
def conv_workloads(draw):
    return ConvWorkload(
        batch=1,
        in_channels=draw(st.sampled_from([16, 32, 64, 128])),
        out_channels=draw(st.sampled_from([16, 32, 64, 128, 256])),
        in_height=draw(st.integers(min_value=7, max_value=64)),
        in_width=draw(st.integers(min_value=7, max_value=64)),
        kernel_size=draw(st.sampled_from([1, 3])),
        stride=draw(st.sampled_from([1, 2])),
        padding=draw(st.sampled_from([0, 1])),
    )


@st.composite
def kernel_configs(draw, workload):
    return KernelConfig(
        tile_oc=draw(st.sampled_from([4, 8, 16])),
        tile_oh=draw(st.sampled_from([1, 2, 4])),
        tile_ow=draw(st.integers(min_value=1, max_value=max(1, workload.out_width))),
        vector_lanes=8,
        unroll=draw(st.sampled_from([1, 2, 4])),
        threads=draw(st.sampled_from([1, 4, 32])),
        vectorize=draw(st.sampled_from(["width", "channels"])),
    )


class TestPerfModelProperties:
    @given(st.data())
    @settings(**_SETTINGS)
    def test_time_positive_finite_for_any_legal_config(self, data):
        workload = data.draw(conv_workloads())
        config = data.draw(kernel_configs(workload))
        for machine in (INTEL_4790K, AMD_2990WX):
            seconds = execution_time_seconds(workload, config, machine)
            assert np.isfinite(seconds) and seconds > 0.0

    @given(st.data())
    @settings(**_SETTINGS)
    def test_time_scales_with_workload_size(self, data):
        workload = data.draw(conv_workloads())
        config = data.draw(kernel_configs(workload))
        bigger = ConvWorkload(
            batch=workload.batch,
            in_channels=workload.in_channels,
            out_channels=workload.out_channels * 2,
            in_height=workload.in_height,
            in_width=workload.in_width,
            kernel_size=workload.kernel_size,
            stride=workload.stride,
            padding=workload.padding,
        )
        assert execution_time_seconds(bigger, config, INTEL_4790K) >= execution_time_seconds(
            workload, config, INTEL_4790K
        ) * 0.99


class TestParetoProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(**_SETTINGS)
    def test_frontier_is_subset_and_mutually_nondominating(self, raw_points):
        points = [ParetoPoint(cost, value) for cost, value in raw_points]
        frontier = pareto_frontier(points)
        assert frontier
        assert all(point in points for point in frontier)
        for a in frontier:
            assert not any(b.dominates(a) for b in points)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(**_SETTINGS)
    def test_frontier_contains_extreme_points(self, raw_points):
        points = [ParetoPoint(cost, value) for cost, value in raw_points]
        frontier = pareto_frontier(points)
        best_value = max(p.value for p in points)
        assert any(p.value == best_value for p in frontier)


class TestSurrogateProperties:
    @given(
        st.sampled_from(["imagenet", "cars"]),
        st.sampled_from(["resnet18", "resnet50"]),
        st.floats(min_value=100.0, max_value=500.0),
        st.floats(min_value=0.2, max_value=1.0),
    )
    @settings(**_SETTINGS)
    def test_static_accuracy_bounded(self, dataset, model, resolution, crop):
        accuracy = StaticAccuracyModel(dataset, model).accuracy(resolution, crop)
        assert 0.0 <= accuracy <= 100.0

    @given(
        st.sampled_from(["imagenet", "cars"]),
        st.floats(min_value=0.9, max_value=1.0),
        st.floats(min_value=0.9, max_value=1.0),
        st.sampled_from([112, 224, 448]),
    )
    @settings(**_SETTINGS)
    def test_quality_drop_monotone_in_ssim(self, dataset, ssim_a, ssim_b, resolution):
        quality = QualityDegradationModel(dataset)
        low, high = min(ssim_a, ssim_b), max(ssim_a, ssim_b)
        assert quality.accuracy_drop(resolution, low) >= quality.accuracy_drop(resolution, high)
