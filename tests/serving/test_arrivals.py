"""Arrival-process tests: determinism, shape, and closed-loop bookkeeping."""

import numpy as np
import pytest

from repro.serving.arrivals import (
    ClosedLoopClients,
    OnOffArrivals,
    PoissonArrivals,
    sample_keys,
)

KEYS = [f"img{i}" for i in range(8)]


class TestPoissonArrivals:
    def test_trace_is_deterministic_under_seed(self):
        a = PoissonArrivals(rate_rps=100.0, seed=7).trace(KEYS, 50)
        b = PoissonArrivals(rate_rps=100.0, seed=7).trace(KEYS, 50)
        assert a == b

    def test_different_seeds_differ(self):
        a = PoissonArrivals(rate_rps=100.0, seed=7).trace(KEYS, 50)
        b = PoissonArrivals(rate_rps=100.0, seed=8).trace(KEYS, 50)
        assert a != b

    def test_times_increase_and_ids_are_sequential(self):
        trace = PoissonArrivals(rate_rps=250.0, seed=0).trace(KEYS, 40)
        times = [r.arrival_time for r in trace]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        assert [r.request_id for r in trace] == list(range(40))
        assert all(r.key in KEYS for r in trace)

    def test_mean_rate_is_approximately_honoured(self):
        trace = PoissonArrivals(rate_rps=1000.0, seed=3).trace(KEYS, 2000)
        span = trace[-1].arrival_time
        assert 800 < len(trace) / span < 1200

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_rps=0.0)


class TestOnOffArrivals:
    def test_trace_is_deterministic_under_seed(self):
        process = OnOffArrivals(on_rate_rps=500.0, mean_on_s=0.05, mean_off_s=0.2, seed=4)
        assert process.trace(KEYS, 60) == process.trace(KEYS, 60)

    def test_burstier_than_poisson(self):
        """ON/OFF gaps have a higher coefficient of variation than exponential."""
        bursty = OnOffArrivals(
            on_rate_rps=2000.0, mean_on_s=0.02, mean_off_s=0.5, seed=1
        ).trace(KEYS, 400)
        gaps = np.diff([r.arrival_time for r in bursty])
        cv = gaps.std() / gaps.mean()
        assert cv > 1.5  # exponential inter-arrivals have cv == 1

    def test_off_phase_can_carry_traffic(self):
        trace = OnOffArrivals(
            on_rate_rps=500.0, off_rate_rps=50.0, mean_on_s=0.05, mean_off_s=0.5, seed=2
        ).trace(KEYS, 100)
        assert len(trace) == 100


class TestZipfSampling:
    def test_skew_concentrates_on_low_ranks(self):
        rng = np.random.default_rng(0)
        uniform = sample_keys(rng, KEYS, 4000, zipf_alpha=0.0)
        rng = np.random.default_rng(0)
        skewed = sample_keys(rng, KEYS, 4000, zipf_alpha=1.5)
        assert skewed.count(KEYS[0]) > 2 * uniform.count(KEYS[0])


class TestClosedLoopClients:
    def test_start_issues_one_request_per_client(self):
        clients = ClosedLoopClients(num_clients=5, think_time_s=0.01, seed=0)
        initial = clients.start(KEYS)
        assert len(initial) == 5
        assert sorted(r.client_id for r in initial) == list(range(5))
        assert len({r.request_id for r in initial}) == 5

    def test_quota_is_enforced_per_client(self):
        clients = ClosedLoopClients(
            num_clients=2, think_time_s=0.0, requests_per_client=3, seed=1
        )
        clients.start(KEYS)
        issued = 2
        clock = 1.0
        while True:
            follow_up = clients.next_request(0, clock)
            if follow_up is None:
                break
            assert follow_up.arrival_time >= clock
            issued += 1
            clock += 1.0
        # client 0 reached its quota of 3; client 1 still owes 2 more
        assert issued == 2 + 2
        assert clients.next_request(1, clock) is not None

    def test_restart_resets_state_deterministically(self):
        clients = ClosedLoopClients(num_clients=3, think_time_s=0.01, seed=5)
        first = clients.start(KEYS)
        second = clients.start(KEYS)
        assert first == second
