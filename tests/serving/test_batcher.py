"""Dynamic batcher and batch cost model tests."""

import pytest

from repro.hwsim.machine import INTEL_4790K
from repro.nn.resnet import resnet_tiny
from repro.serving.batcher import DynamicBatcher, HwSimBatchCost, LinearBatchCost


class TestDynamicBatcher:
    def test_full_group_flushes_immediately(self):
        batcher = DynamicBatcher(max_batch_size=3, max_wait_s=1.0)
        batcher.add(32, "a", now=0.0)
        batcher.add(32, "b", now=0.05)
        batch, timer = batcher.add(32, "c", now=0.1)
        assert batch == ["a", "b", "c"]
        assert timer is None
        assert batcher.queue_depth == 0

    def test_first_item_arms_a_timer(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=0.01)
        batch, timer = batcher.add(48, "x", now=2.0)
        assert batch is None
        assert timer.deadline == pytest.approx(2.01)
        assert timer.resolution == 48
        # Second item does not re-arm: the oldest member's deadline governs.
        batch, timer = batcher.add(48, "y", now=2.005)
        assert batch is None and timer is None
        assert batcher.queue_depth == 2

    def test_timeout_flushes_the_armed_group(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=0.01)
        _, timer = batcher.add(48, "x", now=0.0)
        batcher.add(48, "y", now=0.004)
        batch = batcher.on_timeout(timer.resolution, timer.epoch)
        assert batch == ["x", "y"]
        assert batcher.queue_depth == 0

    def test_stale_timer_is_ignored_after_size_flush(self):
        batcher = DynamicBatcher(max_batch_size=2, max_wait_s=0.01)
        _, timer = batcher.add(32, "x", now=0.0)
        batch, _ = batcher.add(32, "y", now=0.001)  # size flush bumps the epoch
        assert batch == ["x", "y"]
        batcher.add(32, "z", now=0.002)  # a fresh group is forming
        assert batcher.on_timeout(timer.resolution, timer.epoch) is None
        assert batcher.queue_depth == 1

    def test_groups_are_per_resolution(self):
        batcher = DynamicBatcher(max_batch_size=2, max_wait_s=0.01)
        batcher.add(24, "a", now=0.0)
        batcher.add(48, "b", now=0.0)
        assert sorted(batcher.pending_resolutions()) == [24, 48]
        batch, _ = batcher.add(24, "c", now=0.001)
        assert batch == ["a", "c"]
        assert batcher.pending_resolutions() == [48]

    def test_batch_size_one_flushes_instantly(self):
        batcher = DynamicBatcher(max_batch_size=1, max_wait_s=0.01)
        batch, timer = batcher.add(32, "solo", now=0.0)
        assert batch == ["solo"] and timer is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch_size=0, max_wait_s=0.01)
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch_size=4, max_wait_s=-1.0)


class TestBatchCostModels:
    def test_linear_cost_is_affine_in_batch_size(self):
        cost = LinearBatchCost(per_item_seconds=0.002, fixed_seconds=0.01)
        assert cost.batch_seconds(32, 1) == pytest.approx(0.012)
        assert cost.batch_seconds(32, 4) == pytest.approx(0.018)
        with pytest.raises(ValueError):
            cost.batch_seconds(32, 0)

    def test_hwsim_cost_amortizes_per_image_latency(self):
        model = resnet_tiny(num_classes=4, base_width=4, seed=0)
        cost = HwSimBatchCost(model, INTEL_4790K, kernel_source="library")
        single = cost.batch_seconds(32, 1)
        batched = cost.batch_seconds(32, 4)
        assert single > 0
        assert batched > single  # a bigger batch takes longer in total...
        assert batched / 4 < single  # ...but less per image
        # Cached: asking again must not re-estimate (same object identity).
        assert cost.batch_seconds(32, 4) == batched

    def test_hwsim_cost_grows_with_resolution(self):
        model = resnet_tiny(num_classes=4, base_width=4, seed=0)
        cost = HwSimBatchCost(model, INTEL_4790K, kernel_source="library")
        assert cost.batch_seconds(48, 2) > cost.batch_seconds(24, 2)
