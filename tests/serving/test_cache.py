"""Scan-cache tests: LRU mechanics, byte accounting, and property invariants.

The property tests run the cache against a lightweight fake store (scan
byte sizes only, no real codec) so hypothesis can explore thousands of
operation sequences quickly; the integration-level behaviour against the
real :class:`ImageStore` is covered in ``test_server.py``.
"""

from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving.cache import ScanCache

_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- a minimal store double ------------------------------------------------------


@dataclass(frozen=True)
class _FakeReceipt:
    bytes_read: int


class _FakeEncoded:
    """Scan-prefix byte accounting without any actual image payload."""

    def __init__(self, scan_bytes: tuple[int, ...]) -> None:
        self.scan_bytes = scan_bytes

    @property
    def num_scans(self) -> int:
        return len(self.scan_bytes)

    @property
    def total_bytes(self) -> int:
        return sum(self.scan_bytes)

    def cumulative_bytes(self, num_scans: int) -> int:
        return sum(self.scan_bytes[:num_scans])

    def decode(self, num_scans: int) -> np.ndarray:
        return np.full((1,), float(num_scans))


class _FakeStoredImage:
    def __init__(self, encoded: _FakeEncoded) -> None:
        self.encoded = encoded
        self.label = None


class _FakeStore:
    def __init__(self, objects: dict[str, _FakeEncoded]) -> None:
        self._objects = objects
        self.total_bytes_read = 0

    def metadata(self, key: str) -> _FakeStoredImage:
        return _FakeStoredImage(self._objects[key])

    def read(self, key: str, num_scans: int):
        encoded = self._objects[key]
        bytes_read = encoded.cumulative_bytes(num_scans)
        self.total_bytes_read += bytes_read
        return encoded.decode(num_scans), _FakeReceipt(bytes_read)

    def read_additional(self, key: str, already_read_scans: int, num_scans: int):
        encoded = self._objects[key]
        bytes_read = encoded.cumulative_bytes(num_scans) - encoded.cumulative_bytes(
            already_read_scans
        )
        self.total_bytes_read += bytes_read
        return encoded.decode(num_scans), _FakeReceipt(bytes_read)


def make_store(num_keys: int = 4, scan_cost: int = 100) -> _FakeStore:
    return _FakeStore(
        {f"k{i}": _FakeEncoded((scan_cost,) * 5) for i in range(num_keys)}
    )


# -- directed unit tests ---------------------------------------------------------


class TestScanCacheMechanics:
    def test_miss_then_hit(self):
        store, cache = make_store(), ScanCache(capacity_bytes=10_000)
        _, first = cache.read_through(store, "k0", 3)
        _, second = cache.read_through(store, "k0", 3)
        assert first.outcome == "miss" and first.bytes_fetched == 300
        assert second.outcome == "hit" and second.bytes_fetched == 0
        assert second.bytes_from_cache == 300

    def test_shorter_prefix_is_a_full_hit(self):
        store, cache = make_store(), ScanCache(capacity_bytes=10_000)
        cache.read_through(store, "k0", 4)
        _, read = cache.read_through(store, "k0", 2)
        assert read.outcome == "hit"
        assert read.bytes_fetched == 0

    def test_longer_prefix_pays_only_incremental_scans(self):
        store, cache = make_store(), ScanCache(capacity_bytes=10_000)
        cache.read_through(store, "k0", 2)
        _, read = cache.read_through(store, "k0", 5)
        assert read.outcome == "partial"
        assert read.bytes_fetched == 300  # scans 3..5 only
        assert read.bytes_from_cache == 200
        assert cache.cached_scans("k0") == 5

    def test_eviction_follows_lru_order(self):
        store = make_store(num_keys=4)
        cache = ScanCache(capacity_bytes=600)  # room for three 2-scan entries
        for key in ("k0", "k1", "k2"):
            cache.read_through(store, key, 2)
        cache.read_through(store, "k0", 2)  # touch k0: k1 is now LRU
        cache.read_through(store, "k3", 2)  # overflow -> evict k1
        assert cache.lru_keys() == ["k2", "k0", "k3"]
        assert "k1" not in cache
        assert cache.stats.evictions == 1

    def test_entry_larger_than_capacity_is_never_admitted(self):
        store = make_store()
        cache = ScanCache(capacity_bytes=250)
        _, read = cache.read_through(store, "k0", 5)  # 500 bytes > capacity
        assert read.outcome == "miss"
        assert "k0" not in cache
        assert cache.bytes_cached == 0

    def test_upgrade_past_capacity_drops_the_entry(self):
        store = make_store()
        cache = ScanCache(capacity_bytes=250)
        cache.read_through(store, "k0", 2)  # 200 bytes, admitted
        _, read = cache.read_through(store, "k0", 5)  # upgrade to 500 > capacity
        assert read.outcome == "partial"
        assert "k0" not in cache
        assert cache.bytes_cached == 0

    def test_unrecorded_topup_skips_hit_tallies_but_counts_bytes(self):
        store, cache = make_store(), ScanCache(capacity_bytes=10_000)
        cache.read_through(store, "k0", 2, record=True)
        cache.read_through(store, "k0", 4, record=False)
        assert cache.stats.lookups == 1
        assert cache.stats.misses == 1 and cache.stats.partial_hits == 0
        assert cache.stats.bytes_fetched == 400
        assert cache.stats.bytes_from_cache == 200  # the resident 2-scan prefix

    def test_byte_counters_sum_to_bytes_consumed_across_stages(self):
        """Stage pairs (record=True then record=False top-up) keep the ledger
        consistent: from_cache never double counts the caller's own reads."""
        store, cache = make_store(), ScanCache(capacity_bytes=10_000)
        # Request A: miss at 2 scans, top-up to 4 (its own stage-1 bytes must
        # not be credited to the cache).
        cache.read_through(store, "k0", 2, record=True)
        cache.read_through(store, "k0", 4, record=False, already_read=2)
        assert cache.stats.bytes_fetched == 400
        assert cache.stats.bytes_from_cache == 0
        # Request B: full hit at 2, top-up hit to 4 — all four scans resident.
        cache.read_through(store, "k0", 2, record=True)
        cache.read_through(store, "k0", 4, record=False, already_read=2)
        assert cache.stats.bytes_fetched == 400
        assert cache.stats.bytes_from_cache == 400

    def test_miss_with_already_read_pays_only_incremental(self):
        store = make_store()
        cache = ScanCache(capacity_bytes=150)  # the 2-scan prefix (200B) is not admitted
        cache.read_through(store, "k0", 2, record=True)
        assert "k0" not in cache
        store.total_bytes_read = 0
        _, read = cache.read_through(store, "k0", 4, record=False, already_read=2)
        assert read.bytes_fetched == 200  # scans 3..4, not 1..4
        assert store.total_bytes_read == 200

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ScanCache(capacity_bytes=0)


# -- property-style invariants ---------------------------------------------------


@st.composite
def cache_workloads(draw):
    num_keys = draw(st.integers(min_value=1, max_value=5))
    scan_sizes = {
        f"k{i}": tuple(
            draw(st.integers(min_value=1, max_value=200)) for _ in range(5)
        )
        for i in range(num_keys)
    }
    capacity = draw(st.integers(min_value=50, max_value=1500))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_keys - 1),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return scan_sizes, capacity, ops


class TestScanCacheProperties:
    @given(cache_workloads())
    @settings(**_SETTINGS)
    def test_invariants_hold_after_every_operation(self, workload):
        scan_sizes, capacity, ops = workload
        store = _FakeStore({key: _FakeEncoded(sizes) for key, sizes in scan_sizes.items()})
        cache = ScanCache(capacity_bytes=capacity)
        for key_index, scans in ops:
            key = f"k{key_index}"
            image, read = cache.read_through(store, key, scans)
            needed = sum(scan_sizes[key][:scans])
            # The request is always exactly satisfied, from cache plus store.
            assert read.bytes_from_cache + read.bytes_fetched == needed
            # Capacity is never exceeded and residency matches the ledger.
            assert cache.bytes_cached <= capacity
            resident = sum(
                sum(scan_sizes[k][: cache.cached_scans(k)]) for k in cache.lru_keys()
            )
            assert resident == cache.bytes_cached
        stats = cache.stats
        assert stats.hits + stats.partial_hits + stats.misses == stats.lookups
        assert stats.lookups == len(ops)
        assert 0.0 <= stats.hit_rate <= 1.0

    @given(cache_workloads())
    @settings(**_SETTINGS)
    def test_cache_never_increases_store_traffic(self, workload):
        scan_sizes, capacity, ops = workload
        objects = {key: _FakeEncoded(sizes) for key, sizes in scan_sizes.items()}
        cached_store = _FakeStore(objects)
        cache = ScanCache(capacity_bytes=capacity)
        raw_store = _FakeStore(objects)
        for key_index, scans in ops:
            key = f"k{key_index}"
            cache.read_through(cached_store, key, scans)
            raw_store.read(key, scans)
        assert cached_store.total_bytes_read <= raw_store.total_bytes_read
        assert cache.stats.bytes_fetched == cached_store.total_bytes_read
