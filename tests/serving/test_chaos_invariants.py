"""Conservation-law invariants of the elastic fleet under random chaos.

The elastic fleet re-routes work mid-run — crashes destroy in-flight
requests, autoscaling remaps ring segments, replicas spread hot keys — so
its correctness claim is a *conservation law*, not a golden file: whatever
the fault schedule, every arrival must end in exactly one of

* completed (appears once in ``last_served``),
* dropped with a reason (admission shed it, or ``fleet-down`` when no
  shard was ever live to take it), or
* crash-failed and re-routed, in which case its *re-injected* incarnation
  must itself end in one of the first two.

Hypothesis drives randomized fault schedules (explicit crash/recovery
plans and degraded-bandwidth windows over random traffic) and checks that
partition, that no request id completes twice, and that the whole run is a
pure function of its configuration — a same-seed rerun produces a
byte-identical :class:`~repro.serving.elastic.ElasticFleetReport`.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codec.progressive import ProgressiveEncoder
from repro.core.policies import StaticResolutionPolicy
from repro.data.dataset import SyntheticDataset
from repro.data.profiles import IMAGENET_LIKE
from repro.nn.resnet import resnet_tiny
from repro.serving.arrivals import PoissonArrivals
from repro.serving.autoscale import ThresholdAutoscaler
from repro.serving.batcher import LinearBatchCost
from repro.serving.cache import ScanCache
from repro.serving.elastic import FLEET_DOWN, ElasticFleet
from repro.serving.events import ShardCrashed, ShardRecovered
from repro.serving.faults import CrashSchedule, DegradedStorage
from repro.serving.fleet import ConsistentHashRouter, ReplicaRouter
from repro.serving.server import InferenceServer, ServerConfig
from repro.storage.policy import ScanReadPolicy
from repro.storage.store import ImageStore

RESOLUTIONS = (24, 32, 48)

#: Shared fixtures: rendering/encoding the catalogue dominates example
#: runtime, so every hypothesis example reuses one store and one backbone
#: (fleet servers share store *contents*, exactly as the engine's shards do).
_FIXTURES: dict = {}


def _profile():
    profile = IMAGENET_LIKE
    return type(profile)(
        name="chaos-tiny",
        num_classes=4,
        storage_resolution_mean=72,
        storage_resolution_std=6,
        object_scale_mean=profile.object_scale_mean,
        object_scale_std=profile.object_scale_std,
        texture_weight=profile.texture_weight,
        detail_sensitivity=profile.detail_sensitivity,
    )


def _store() -> ImageStore:
    if "store" not in _FIXTURES:
        store = ImageStore(encoder=ProgressiveEncoder(quality=85))
        dataset = SyntheticDataset(_profile(), size=6, seed=13)
        for sample in dataset:
            store.put(f"img{sample.index}", sample.render(), label=sample.label)
        _FIXTURES["store"] = store
    return _FIXTURES["store"]


def _backbone():
    if "backbone" not in _FIXTURES:
        _FIXTURES["backbone"] = resnet_tiny(num_classes=4, base_width=4, seed=0)
    return _FIXTURES["backbone"]


def _server_factory(shard_id: int) -> InferenceServer:
    return InferenceServer(
        _store(),
        _backbone(),
        StaticResolutionPolicy(32),
        ServerConfig(
            resolutions=RESOLUTIONS,
            scale_resolution=24,
            num_workers=2,
            max_batch_size=4,
            max_wait_s=0.004,
        ),
        read_policy=ScanReadPolicy(),
        cache=ScanCache(capacity_bytes=150_000),
        batch_cost=LinearBatchCost(),
    )


def _build_fleet(plan, autoscale=None) -> ElasticFleet:
    num_shards = plan["num_shards"]
    horizon = plan["num_requests"] / plan["rate_rps"]
    crashes = [
        {
            "shard": crash["shard"] % num_shards,
            "at_s": crash["at_frac"] * horizon,
            **(
                {"down_s": crash["down_frac"] * horizon}
                if crash["down_frac"] is not None
                else {}
            ),
        }
        for crash in plan["crashes"]
    ]
    windows = [
        {
            "shard": window["shard"] % num_shards,
            "at_s": window["at_frac"] * horizon,
            "duration_s": window["dur_frac"] * horizon,
            "factor": window["factor"],
        }
        for window in plan["degrades"]
    ]
    injectors = []
    if crashes:
        injectors.append(CrashSchedule(crashes))
    if windows:
        injectors.append(DegradedStorage(windows))
    if plan["replicas"] > 1:
        router = ReplicaRouter(range(num_shards), replicas=plan["replicas"], seed=11)
    else:
        router = ConsistentHashRouter(range(num_shards), seed=11)
    return ElasticFleet(
        _server_factory,
        num_shards,
        router,
        autoscale=autoscale,
        autoscale_interval_s=max(horizon / 6.0, 1e-4),
        min_shards=1,
        max_shards=num_shards + 3,
        injectors=injectors,
        replicas=plan["replicas"],
    )


def _trace(plan):
    process = PoissonArrivals(
        rate_rps=plan["rate_rps"], seed=plan["seed"], zipf_alpha=1.0
    )
    return process.trace(_store().keys(), plan["num_requests"])


def _assert_conservation(plan, fleet: ElasticFleet, report) -> None:
    """Every arrival completed once XOR dropped once; tallies line up."""
    trace_ids = set(range(plan["num_requests"]))
    served_ids = [record.request_id for record in fleet.last_served]
    dropped_ids = [request.request_id for request, _ in fleet.last_dropped]
    assert len(served_ids) == len(set(served_ids)), "duplicate completion"
    assert len(dropped_ids) == len(set(dropped_ids)), "duplicate drop"
    assert set(served_ids) & set(dropped_ids) == set(), "served AND dropped"
    assert set(served_ids) | set(dropped_ids) == trace_ids, "lost arrivals"
    assert report.num_requests == len(served_ids)
    assert report.fleet.dropped_requests == len(dropped_ids)
    for request, reason in fleet.last_dropped:
        assert reason, "drops must carry a reason"
    # Topology events are time-ordered and crash/recover counts agree.
    times = [event.time for event in fleet.last_events]
    assert times == sorted(times)
    crash_events = [e for e in fleet.last_events if isinstance(e, ShardCrashed)]
    recover_events = [e for e in fleet.last_events if isinstance(e, ShardRecovered)]
    assert report.crashes == len(crash_events)
    assert report.recoveries == len(recover_events)
    assert report.crash_rerouted_requests == sum(
        e.failed_requests for e in crash_events
    )


fault_plan = st.fixed_dictionaries(
    {
        "num_shards": st.integers(min_value=2, max_value=4),
        "replicas": st.integers(min_value=1, max_value=2),
        "rate_rps": st.floats(min_value=400.0, max_value=4000.0),
        "seed": st.integers(min_value=0, max_value=2**16),
        "num_requests": st.integers(min_value=8, max_value=40),
        "crashes": st.lists(
            st.fixed_dictionaries(
                {
                    "shard": st.integers(min_value=0, max_value=5),
                    "at_frac": st.floats(min_value=0.05, max_value=0.95),
                    "down_frac": st.one_of(
                        st.none(), st.floats(min_value=0.05, max_value=0.6)
                    ),
                }
            ),
            min_size=0,
            max_size=3,
        ),
        "degrades": st.lists(
            st.fixed_dictionaries(
                {
                    "shard": st.integers(min_value=0, max_value=5),
                    "at_frac": st.floats(min_value=0.0, max_value=0.8),
                    "dur_frac": st.floats(min_value=0.05, max_value=0.4),
                    "factor": st.floats(min_value=0.1, max_value=1.0),
                }
            ),
            min_size=0,
            max_size=2,
        ),
    }
)

_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_SMALL_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(plan=fault_plan)
@_SETTINGS
def test_conservation_under_random_fault_schedules(plan) -> None:
    """The conservation law holds for arbitrary crash/degrade schedules."""
    fleet = _build_fleet(plan)
    report = fleet.run(_trace(plan))
    _assert_conservation(plan, fleet, report)


@given(plan=fault_plan)
@_SMALL_SETTINGS
def test_conservation_with_autoscaling_on_top_of_chaos(plan) -> None:
    """Scale-outs/ins during a chaos run never lose or duplicate a request."""
    autoscale = ThresholdAutoscaler(
        high_rps_per_shard=plan["rate_rps"] / 2.0,
        low_rps_per_shard=plan["rate_rps"] / 16.0,
    )
    fleet = _build_fleet(plan, autoscale=autoscale)
    report = fleet.run(_trace(plan))
    _assert_conservation(plan, fleet, report)
    assert report.final_num_shards >= 0
    assert report.num_shards >= plan["num_shards"]  # ever-live includes initial


@given(plan=fault_plan)
@_SMALL_SETTINGS
def test_same_seed_rerun_is_byte_identical(plan) -> None:
    """A chaos run is a pure function of its configuration."""
    first = _build_fleet(plan).run(_trace(plan))
    second = _build_fleet(plan).run(_trace(plan))
    assert first.to_json() == second.to_json()


def test_unrecovered_total_outage_drops_fleet_down() -> None:
    """Arrivals after every shard died (and none returns) drop as fleet-down."""
    plan = {
        "num_shards": 2,
        "replicas": 1,
        "rate_rps": 2000.0,
        "seed": 5,
        "num_requests": 30,
        "crashes": [
            {"shard": 0, "at_frac": 0.3, "down_frac": None},
            {"shard": 1, "at_frac": 0.3, "down_frac": None},
        ],
        "degrades": [],
    }
    fleet = _build_fleet(plan)
    report = fleet.run(_trace(plan))
    _assert_conservation(plan, fleet, report)
    reasons = {reason for _, reason in fleet.last_dropped}
    assert FLEET_DOWN in reasons
    assert report.final_num_shards == 0


def test_replicas_keep_keys_servable_across_a_crash() -> None:
    """With R=2 a single crash-with-recovery loses no request permanently."""
    plan = {
        "num_shards": 3,
        "replicas": 2,
        "rate_rps": 2000.0,
        "seed": 9,
        "num_requests": 40,
        "crashes": [{"shard": 1, "at_frac": 0.4, "down_frac": 0.3}],
        "degrades": [],
    }
    fleet = _build_fleet(plan)
    report = fleet.run(_trace(plan))
    _assert_conservation(plan, fleet, report)
    assert not any(reason == FLEET_DOWN for _, reason in fleet.last_dropped)
    assert report.num_requests == plan["num_requests"]
    assert report.recoveries == report.crashes == 1
    assert report.mean_time_to_recover_s is not None
    assert report.mean_time_to_recover_s > 0
