"""Control-plane tests: admission protocols, EWMA smoothing, prefetch accounting.

The contract under test is the ISSUE's acceptance criterion: the control
plane is a *seam*, so any admission policy that never drops must leave the
serving pipeline's output byte-identical to the no-op default, while the
real controllers (EWMA admission, next-scan prefetch) must demonstrably
shed load and pre-warm the cache with honest accounting.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.progressive import ProgressiveEncoder
from repro.core.policies import StaticResolutionPolicy
from repro.nn.resnet import resnet_tiny
from repro.serving import (
    AdmissionDecision,
    AdmissionPolicy,
    AlwaysAdmit,
    EwmaAdmissionController,
    InferenceServer,
    NextScanPrefetcher,
    NoPrefetch,
    OnOffArrivals,
    PoissonArrivals,
    ScanCache,
    ServerConfig,
)
from repro.serving.batcher import LinearBatchCost
from repro.serving.events import CacheProbed, PrefetchIssued, RequestCompleted
from repro.serving.metrics import ServedRequest
from repro.storage.policy import ScanReadPolicy
from repro.storage.store import ImageStore

RESOLUTIONS = (24, 32, 48)


@pytest.fixture(scope="module")
def control_store(tiny_imagenet_like):
    store = ImageStore(encoder=ProgressiveEncoder(quality=85))
    for sample in list(tiny_imagenet_like)[:10]:
        store.put(f"img{sample.index}", sample.render(), label=sample.label)
    return store


@pytest.fixture(scope="module")
def backbone():
    return resnet_tiny(num_classes=4, base_width=4, seed=0)


@pytest.fixture(scope="module")
def read_policy():
    return ScanReadPolicy(ssim_thresholds={24: 0.90, 32: 0.92, 48: 0.95})


def make_server(store, backbone, read_policy, admission=None, prefetch=None, cache=None, **config):
    defaults = dict(
        resolutions=RESOLUTIONS,
        scale_resolution=24,
        num_workers=2,
        max_batch_size=4,
        max_wait_s=0.004,
    )
    defaults.update(config)
    return InferenceServer(
        store,
        backbone,
        StaticResolutionPolicy(32),
        ServerConfig(**defaults),
        read_policy=read_policy,
        cache=cache,
        batch_cost=LinearBatchCost(per_item_seconds=0.002, fixed_seconds=0.002),
        admission=admission,
        prefetch=prefetch,
    )


def completed(latency: float) -> RequestCompleted:
    """A completion event with the given latency, for feeding controllers."""
    return RequestCompleted(
        time=latency,
        record=ServedRequest(
            request_id=0,
            key="img0",
            arrival_time=0.0,
            ready_time=0.1 * latency,
            dispatch_time=0.5 * latency,
            completion_time=latency,
            resolution=32,
            scans_read=3,
            bytes_from_store=100,
            bytes_from_cache=0,
            total_bytes=400,
            batch_size=1,
            prediction=1,
            label=1,
        ),
    )


class TestEwmaSmoothing:
    def test_first_observation_seeds_the_average(self):
        controller = EwmaAdmissionController(alpha=0.25, depth_threshold=100.0)
        controller.admit(None, 0.0, 8)
        assert controller.smoothed_depth == pytest.approx(8.0)

    def test_smoothing_follows_the_ewma_recurrence(self):
        controller = EwmaAdmissionController(alpha=0.25, depth_threshold=100.0)
        smoothed = None
        for depth in (4, 12, 0, 20):
            controller.admit(None, 0.0, depth)
            smoothed = depth if smoothed is None else 0.25 * depth + 0.75 * smoothed
            assert controller.smoothed_depth == pytest.approx(smoothed)

    def test_alpha_one_tracks_the_instantaneous_depth(self):
        controller = EwmaAdmissionController(alpha=1.0, depth_threshold=100.0)
        for depth in (3, 17, 5):
            controller.admit(None, 0.0, depth)
            assert controller.smoothed_depth == pytest.approx(float(depth))

    def test_drops_only_when_smoothed_depth_crosses_threshold(self):
        controller = EwmaAdmissionController(alpha=0.5, depth_threshold=10.0)
        # Instantaneous spike above threshold, smoothed from 0: 0.5*30 = 15 > 10
        controller.admit(None, 0.0, 0)
        decision = controller.admit(None, 0.0, 30)
        assert not decision.admitted
        assert decision.reason == "queue-depth"
        # A single spike through a heavy average does not drop.
        calm = EwmaAdmissionController(alpha=0.1, depth_threshold=10.0)
        calm.admit(None, 0.0, 0)
        assert calm.admit(None, 0.0, 30).admitted  # 0.1*30 = 3 <= 10

    def test_latency_ewma_and_deadline_drops(self):
        controller = EwmaAdmissionController(
            alpha=0.5, depth_threshold=1000.0, deadline_s=0.05, latency_alpha=0.5
        )
        # No completions yet: deadline cannot be evaluated, so admit.
        assert controller.admit(None, 0.0, 1).admitted
        controller.on_event(completed(0.2))
        assert controller.smoothed_latency_s == pytest.approx(0.2)
        decision = controller.admit(None, 0.0, 4)
        assert not decision.admitted and decision.reason == "deadline"
        # Fast completions pull the EWMA back under the deadline.
        for _ in range(5):
            controller.on_event(completed(0.001))
        assert controller.admit(None, 0.0, 4).admitted

    def test_idle_server_escapes_a_frozen_deadline_estimate(self):
        """Regression: with the queue empty the deadline check must not
        apply, otherwise a congested latency EWMA (which only completions
        can refresh) would lock out all traffic forever."""
        controller = EwmaAdmissionController(
            alpha=0.5, depth_threshold=1000.0, deadline_s=0.05, latency_alpha=0.5
        )
        controller.on_event(completed(0.5))  # estimate far above the deadline
        assert not controller.admit(None, 0.0, 3).admitted  # queued: shed
        decision = controller.admit(None, 1.0, 0)  # idle: always attempt
        assert decision.admitted
        assert controller.drops_by_reason == {"deadline": 1}

    def test_drop_accounting_by_reason(self):
        controller = EwmaAdmissionController(
            alpha=1.0, depth_threshold=5.0, deadline_s=0.01, latency_alpha=1.0
        )
        controller.admit(None, 0.0, 20)  # queue-depth drop
        controller.on_event(completed(0.5))
        controller.admit(None, 0.0, 2)  # under the depth bound: deadline drop
        controller.admit(None, 0.0, 20)  # queue-depth drop again
        assert controller.dropped_requests == 3
        assert controller.drops_by_reason == {"queue-depth": 2, "deadline": 1}

    def test_reset_counters_clears_tallies_and_smoothing(self):
        controller = EwmaAdmissionController(alpha=0.5, depth_threshold=1.0)
        controller.admit(None, 0.0, 50)
        controller.on_event(completed(0.5))
        controller.reset_counters()
        assert controller.dropped_requests == 0
        assert controller.drops_by_reason == {}
        assert controller.smoothed_depth is None
        assert controller.smoothed_latency_s is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EwmaAdmissionController(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaAdmissionController(alpha=1.5)
        with pytest.raises(ValueError):
            EwmaAdmissionController(depth_threshold=0)
        with pytest.raises(ValueError):
            EwmaAdmissionController(deadline_s=0.0)
        with pytest.raises(ValueError):
            EwmaAdmissionController(latency_alpha=0.0)


class TestAdmissionInTheLoop:
    def test_overload_drops_and_conserves_offered_requests(
        self, control_store, backbone, read_policy
    ):
        trace = PoissonArrivals(rate_rps=3000.0, seed=4, zipf_alpha=1.0).trace(
            control_store.keys(), 40
        )
        admission = EwmaAdmissionController(alpha=0.5, depth_threshold=3.0)
        server = make_server(
            control_store, backbone, read_policy, admission=admission, num_workers=1
        )
        report = server.run(trace)
        assert report.dropped_requests > 0
        assert report.dropped_requests == admission.dropped_requests
        assert report.num_requests + report.dropped_requests == len(trace)
        assert report.offered_requests == len(trace)
        assert 0.0 < report.drop_rate < 1.0
        assert len(server.last_dropped) == report.dropped_requests
        assert all(reason == "queue-depth" for _, reason in server.last_dropped)

    def test_shedding_load_tightens_the_report_against_no_op(
        self, control_store, backbone, read_policy
    ):
        trace = PoissonArrivals(rate_rps=3000.0, seed=4, zipf_alpha=1.0).trace(
            control_store.keys(), 40
        )
        rigid = make_server(
            control_store, backbone, read_policy, num_workers=1
        ).run(trace)
        shed = make_server(
            control_store,
            backbone,
            read_policy,
            admission=EwmaAdmissionController(alpha=0.5, depth_threshold=3.0),
            num_workers=1,
        ).run(trace)
        assert rigid.dropped_requests == 0
        assert shed.num_requests < rigid.num_requests
        # Shedding work must cut the bytes read along with the queueing.
        assert shed.bytes_from_store < rigid.bytes_from_store
        assert shed.p99_latency_ms < rigid.p99_latency_ms

    def test_all_dropped_is_a_well_defined_report(
        self, control_store, backbone, read_policy
    ):
        class DropEverything(AdmissionPolicy):
            dropped_requests = 0

            def admit(self, request, now, queue_depth):
                self.dropped_requests += 1
                return AdmissionDecision.drop("unconditional")

            def reset_counters(self):
                self.dropped_requests = 0

        trace = PoissonArrivals(rate_rps=500.0, seed=1).trace(control_store.keys(), 10)
        report = make_server(
            control_store, backbone, read_policy, admission=DropEverything()
        ).run(trace)
        assert report.num_requests == 0
        assert report.dropped_requests == 10
        assert report.drop_rate == 1.0
        assert report.p99_latency_ms is None
        assert "requests dropped       10" in report.format()


class TestNeverDropEquivalence:
    """Any admission policy that never drops is indistinguishable from the default."""

    @settings(max_examples=6, deadline=None)
    @given(
        alpha=st.floats(min_value=0.05, max_value=1.0),
        threshold=st.floats(min_value=1e6, max_value=1e9),
        latency_alpha=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_non_dropping_ewma_matches_the_no_op_default(
        self, control_store, backbone, read_policy, alpha, threshold, latency_alpha
    ):
        trace = PoissonArrivals(rate_rps=1500.0, seed=6, zipf_alpha=1.0).trace(
            control_store.keys(), 16
        )
        baseline = make_server(
            control_store, backbone, read_policy, admission=AlwaysAdmit()
        ).run(trace)
        # A threshold this high never trips, so the controller admits all —
        # and must therefore reproduce the default report byte-for-byte.
        lenient = EwmaAdmissionController(
            alpha=alpha, depth_threshold=threshold, latency_alpha=latency_alpha
        )
        report = make_server(
            control_store, backbone, read_policy, admission=lenient
        ).run(trace)
        assert lenient.dropped_requests == 0
        assert report == baseline
        assert report.format() == baseline.format()
        assert report.to_dict() == baseline.to_dict()


class TestPrefetchPlanning:
    def test_short_gap_or_no_cache_plans_nothing(
        self, control_store, backbone, read_policy
    ):
        prefetcher = NextScanPrefetcher(idle_threshold_s=0.05)
        cacheless = make_server(control_store, backbone, read_policy)
        assert prefetcher.plan(1.0, 10.0, cacheless) == []
        cached = make_server(
            control_store, backbone, read_policy, cache=ScanCache(300_000)
        )
        assert prefetcher.plan(1.0, 0.01, cached) == []

    def test_plans_target_the_next_calibrated_level_of_resident_keys(
        self, control_store, backbone, read_policy
    ):
        cache = ScanCache(500_000)
        server = make_server(
            control_store, backbone, read_policy, cache=cache
        )
        key = control_store.keys()[0]
        encoded = control_store.metadata(key).encoded
        levels = sorted(
            {read_policy.scans_for(encoded, r, key=key) for r in RESOLUTIONS}
        )
        cache.read_through(control_store, key, levels[0])  # make the key resident
        prefetcher = NextScanPrefetcher(idle_threshold_s=0.05, max_keys_per_gap=8)
        actions = prefetcher.plan(1.0, 1.0, server)
        assert [a.key for a in actions] == [key]
        next_levels = [level for level in levels if level > levels[0]]
        assert actions[0].num_scans == next_levels[0]

    def test_fully_topped_up_keys_are_not_replanned(
        self, control_store, backbone, read_policy
    ):
        cache = ScanCache(500_000)
        server = make_server(control_store, backbone, read_policy, cache=cache)
        key = control_store.keys()[0]
        encoded = control_store.metadata(key).encoded
        top = max(read_policy.scans_for(encoded, r, key=key) for r in RESOLUTIONS)
        cache.read_through(control_store, key, top)
        prefetcher = NextScanPrefetcher(idle_threshold_s=0.05)
        assert prefetcher.plan(1.0, 1.0, server) == []

    def test_plan_is_seeded_and_bounded(self, control_store, backbone, read_policy):
        cache = ScanCache(500_000)
        server = make_server(control_store, backbone, read_policy, cache=cache)
        for key in control_store.keys()[:6]:
            cache.read_through(control_store, key, 1)
        first = NextScanPrefetcher(idle_threshold_s=0.05, max_keys_per_gap=3, seed=2)
        second = NextScanPrefetcher(idle_threshold_s=0.05, max_keys_per_gap=3, seed=2)
        plan_a = first.plan(1.0, 1.0, server)
        plan_b = second.plan(1.0, 1.0, server)
        assert plan_a == plan_b
        assert len(plan_a) == 3


class TestPrefetchAccounting:
    def probe(self, key: str, resident: int) -> CacheProbed:
        from repro.serving.arrivals import Request

        return CacheProbed(
            time=0.0,
            request=Request(request_id=0, key=key, arrival_time=0.0),
            requested_scans=3,
            resident_scans=resident,
        )

    def test_hits_and_wasted_bytes(self):
        prefetcher = NextScanPrefetcher()
        prefetcher.on_event(PrefetchIssued(time=0.0, key="a", num_scans=3, bytes_fetched=100))
        prefetcher.on_event(PrefetchIssued(time=0.0, key="b", num_scans=3, bytes_fetched=40))
        assert prefetcher.prefetched_bytes == 140
        assert prefetcher.wasted_bytes == 140  # nothing probed yet
        prefetcher.on_event(self.probe("a", resident=3))
        assert prefetcher.prefetch_hits == 1
        assert prefetcher.used_bytes == 100
        assert prefetcher.wasted_bytes == 40

    def test_evicted_prefetches_count_as_wasted(self):
        prefetcher = NextScanPrefetcher()
        prefetcher.on_event(PrefetchIssued(time=0.0, key="a", num_scans=3, bytes_fetched=100))
        # The key was evicted before the probe: resident_scans == 0.
        prefetcher.on_event(self.probe("a", resident=0))
        assert prefetcher.prefetch_hits == 0
        assert prefetcher.wasted_bytes == 100

    def test_repeat_probes_do_not_double_count(self):
        prefetcher = NextScanPrefetcher()
        prefetcher.on_event(PrefetchIssued(time=0.0, key="a", num_scans=3, bytes_fetched=100))
        prefetcher.on_event(self.probe("a", resident=3))
        prefetcher.on_event(self.probe("a", resident=3))
        assert prefetcher.prefetch_hits == 1
        assert prefetcher.used_bytes == 100

    def test_reset_counters_restores_the_seeded_stream(self):
        prefetcher = NextScanPrefetcher(seed=5)
        first = list(prefetcher._rng.permutation(8))
        prefetcher.on_event(PrefetchIssued(time=0.0, key="a", num_scans=3, bytes_fetched=9))
        prefetcher.reset_counters()
        assert prefetcher.prefetched_bytes == 0
        assert prefetcher.wasted_bytes == 0
        assert list(prefetcher._rng.permutation(8)) == first

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NextScanPrefetcher(idle_threshold_s=0.0)
        with pytest.raises(ValueError):
            NextScanPrefetcher(max_keys_per_gap=0)
        # A float cap would silently unbound the per-gap batch.
        with pytest.raises(ValueError):
            NextScanPrefetcher(max_keys_per_gap=2.5)


class TestPrefetchInTheLoop:
    def bursty_trace(self, store, n=40):
        return OnOffArrivals(
            on_rate_rps=2000.0, mean_on_s=0.03, mean_off_s=0.15, seed=2, zipf_alpha=1.0
        ).trace(store.keys(), n)

    def test_off_phase_prefetch_trades_store_bytes_for_prefetch_bytes(
        self, control_store, backbone, read_policy
    ):
        trace = self.bursty_trace(control_store)
        demand_only = make_server(
            control_store, backbone, read_policy, cache=ScanCache(300_000),
            prefetch=NoPrefetch(),
        ).run(trace)
        prefetcher = NextScanPrefetcher(idle_threshold_s=0.05, max_keys_per_gap=4, seed=3)
        prefetched = make_server(
            control_store, backbone, read_policy, cache=ScanCache(300_000),
            prefetch=prefetcher,
        ).run(trace)
        assert prefetched.prefetch_bytes > 0
        assert prefetched.prefetch_bytes == prefetcher.prefetched_bytes
        assert prefetched.prefetch_hits == prefetcher.prefetch_hits
        assert prefetched.prefetch_wasted_bytes == prefetcher.wasted_bytes
        assert prefetched.prefetch_wasted_bytes <= prefetched.prefetch_bytes
        # Pre-warmed prefixes shift demand bytes from the store to the cache...
        assert prefetched.bytes_from_store <= demand_only.bytes_from_store
        # ...without changing what was served.
        assert prefetched.num_requests == demand_only.num_requests
        assert prefetched.resolution_histogram == demand_only.resolution_histogram
        assert prefetched.accuracy == demand_only.accuracy

    def test_no_op_prefetch_matches_the_bare_server(
        self, control_store, backbone, read_policy
    ):
        trace = self.bursty_trace(control_store, n=24)
        bare = make_server(
            control_store, backbone, read_policy, cache=ScanCache(300_000)
        ).run(trace)
        explicit = make_server(
            control_store, backbone, read_policy, cache=ScanCache(300_000),
            prefetch=NoPrefetch(),
        ).run(trace)
        assert bare == explicit
        assert bare.prefetch_bytes == 0
