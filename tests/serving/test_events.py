"""Lifecycle-event stream tests: completeness, ordering, determinism.

The event stream is the control plane's substrate, so these pin down its
contract: every request's life is narrated exactly once (arrival → cache
probe → admission/drop → batch flush → completion), observers see events in
simulated-time order, and two identical runs produce identical streams.
"""

import pytest

from repro.codec.progressive import ProgressiveEncoder
from repro.core.policies import StaticResolutionPolicy
from repro.nn.resnet import resnet_tiny
from repro.serving import (
    EventLog,
    EwmaAdmissionController,
    InferenceServer,
    PoissonArrivals,
    ScanCache,
    ServerConfig,
)
from repro.serving.batcher import LinearBatchCost
from repro.serving.events import (
    BatchFlushed,
    CacheProbed,
    RequestAdmitted,
    RequestArrived,
    RequestCompleted,
    RequestDropped,
)
from repro.storage.policy import ScanReadPolicy
from repro.storage.store import ImageStore

RESOLUTIONS = (24, 32, 48)


@pytest.fixture(scope="module")
def event_store(tiny_imagenet_like):
    store = ImageStore(encoder=ProgressiveEncoder(quality=85))
    for sample in list(tiny_imagenet_like)[:8]:
        store.put(f"img{sample.index}", sample.render(), label=sample.label)
    return store


@pytest.fixture(scope="module")
def backbone():
    return resnet_tiny(num_classes=4, base_width=4, seed=0)


def make_server(store, backbone, log=None, admission=None, **config):
    defaults = dict(
        resolutions=RESOLUTIONS,
        scale_resolution=24,
        num_workers=2,
        max_batch_size=4,
        max_wait_s=0.004,
    )
    defaults.update(config)
    return InferenceServer(
        store,
        backbone,
        StaticResolutionPolicy(32),
        ServerConfig(**defaults),
        read_policy=ScanReadPolicy(ssim_thresholds={24: 0.90, 32: 0.92, 48: 0.95}),
        cache=ScanCache(300_000),
        batch_cost=LinearBatchCost(per_item_seconds=0.002, fixed_seconds=0.002),
        admission=admission,
        observers=[log] if log is not None else (),
    )


def trace_for(store, n=20):
    return PoissonArrivals(rate_rps=800.0, seed=5, zipf_alpha=1.0).trace(store.keys(), n)


class TestStreamCompleteness:
    def test_every_request_is_narrated_exactly_once(self, event_store, backbone):
        log = EventLog()
        trace = trace_for(event_store)
        report = make_server(event_store, backbone, log=log).run(trace)

        arrivals = log.of_type(RequestArrived)
        probes = log.of_type(CacheProbed)
        admitted = log.of_type(RequestAdmitted)
        completed = log.of_type(RequestCompleted)
        assert len(arrivals) == len(trace)
        assert len(probes) == len(trace)  # no drops: every arrival probed
        assert len(admitted) == len(trace)
        assert len(completed) == report.num_requests == len(trace)
        assert log.of_type(RequestDropped) == []
        # Flushed batch sizes account for every admitted request.
        flushed = log.of_type(BatchFlushed)
        assert sum(event.batch_size for event in flushed) == len(trace)

    def test_stream_matches_the_report(self, event_store, backbone):
        log = EventLog()
        trace = trace_for(event_store)
        server = make_server(event_store, backbone, log=log)
        report = server.run(trace)
        records = [event.record for event in log.of_type(RequestCompleted)]
        # The narrated completions are exactly the records the report folds.
        assert sorted(records, key=lambda r: r.request_id) == sorted(
            server.last_served, key=lambda r: r.request_id
        )
        assert sum(r.bytes_from_store for r in records) == report.bytes_from_store
        histogram = {}
        for record in records:
            histogram[record.resolution] = histogram.get(record.resolution, 0) + 1
        assert histogram == report.resolution_histogram

    def test_drops_are_narrated_with_reasons(self, event_store, backbone):
        log = EventLog()
        trace = PoissonArrivals(rate_rps=4000.0, seed=4, zipf_alpha=1.0).trace(
            event_store.keys(), 30
        )
        report = make_server(
            event_store,
            backbone,
            log=log,
            admission=EwmaAdmissionController(alpha=0.5, depth_threshold=3.0),
            num_workers=1,
        ).run(trace)
        drops = log.of_type(RequestDropped)
        assert len(drops) == report.dropped_requests > 0
        assert all(event.reason == "queue-depth" for event in drops)
        # Dropped requests are never probed, admitted, or completed.
        dropped_ids = {event.request.request_id for event in drops}
        admitted_ids = {e.request.request_id for e in log.of_type(RequestAdmitted)}
        completed_ids = {e.record.request_id for e in log.of_type(RequestCompleted)}
        assert dropped_ids.isdisjoint(admitted_ids)
        assert dropped_ids.isdisjoint(completed_ids)
        assert len(admitted_ids) + len(dropped_ids) == len(trace)


class TestStreamOrdering:
    def test_events_are_time_ordered(self, event_store, backbone):
        log = EventLog()
        make_server(event_store, backbone, log=log).run(trace_for(event_store))
        times = [event.time for event in log.events]
        assert times == sorted(times)

    def test_per_request_lifecycle_order(self, event_store, backbone):
        log = EventLog()
        make_server(event_store, backbone, log=log).run(trace_for(event_store))
        for request_id in range(5):
            kinds = [
                type(event)
                for event in log.events
                if (
                    isinstance(event, (RequestArrived, CacheProbed, RequestAdmitted))
                    and event.request.request_id == request_id
                )
                or (
                    isinstance(event, RequestCompleted)
                    and event.record.request_id == request_id
                )
            ]
            assert kinds == [RequestArrived, CacheProbed, RequestAdmitted, RequestCompleted]


class TestStreamDeterminism:
    def test_identical_runs_produce_identical_streams(self, event_store, backbone):
        trace = trace_for(event_store)
        first, second = EventLog(), EventLog()
        make_server(event_store, backbone, log=first).run(trace)
        make_server(event_store, backbone, log=second).run(trace)
        assert first.events == second.events

    def test_subscribe_registers_a_live_observer(self, event_store, backbone):
        server = make_server(event_store, backbone)
        log = EventLog()
        server.subscribe(log)
        server.run(trace_for(event_store, n=8))
        assert len(log.of_type(RequestCompleted)) == 8
        log.clear()
        assert log.events == []


class TestRingBuffer:
    def test_unbounded_log_never_drops(self, event_store, backbone):
        log = EventLog()
        make_server(event_store, backbone, log=log).run(trace_for(event_store))
        assert log.dropped_events == 0

    def test_bounded_log_keeps_the_newest_events(self, event_store, backbone):
        trace = trace_for(event_store)
        full, ring = EventLog(), EventLog(max_events=10)
        make_server(event_store, backbone, log=full).run(trace)
        make_server(event_store, backbone, log=ring).run(trace)
        assert len(ring.events) == 10
        assert ring.dropped_events == len(full.events) - 10
        # The ring holds exactly the tail of the unbounded stream.
        assert ring.events == full.events[-10:]

    def test_of_type_respects_the_window(self, event_store, backbone):
        ring = EventLog(max_events=10)
        make_server(event_store, backbone, log=ring).run(trace_for(event_store))
        assert ring.of_type(RequestCompleted) == [
            event for event in ring.events if isinstance(event, RequestCompleted)
        ]

    def test_clear_resets_the_drop_counter(self, event_store, backbone):
        ring = EventLog(max_events=5)
        make_server(event_store, backbone, log=ring).run(trace_for(event_store, n=8))
        assert ring.dropped_events > 0
        ring.clear()
        assert ring.events == []
        assert ring.dropped_events == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)
        with pytest.raises(ValueError):
            EventLog(max_events=-3)
