"""Sharded-fleet tests: determinism, merge correctness, single-shard equivalence.

The fleet is a composition layer, so its contract is conservation: it must
serve exactly the trace it was given, its fleet-wide totals must be the sum
of its shards, and collapsing it to one shard must reproduce the plain
:class:`~repro.serving.server.InferenceServer` report byte for byte.
"""

from dataclasses import replace

import pytest

from repro.api import Engine, EngineConfig
from repro.api.config import (
    AdmissionConfig,
    ArrivalsConfig,
    BackboneConfig,
    CacheConfig,
    FleetConfig,
    PolicyConfig,
    ServingConfig,
    StoreConfig,
)
from repro.serving.fleet import (
    ConsistentHashRouter,
    FleetReport,
    ShardedFleet,
    load_imbalance_factor,
)

NUM_REQUESTS = 32


def fleet_config(num_shards=3, cache_bytes=150_000, overrides=None, **fleet_kwargs):
    """A small, fast sharded scenario over an 8-image store."""
    return EngineConfig(
        resolutions=(24, 32, 48),
        scale_resolution=24,
        store=StoreConfig(
            profile="imagenet-like",
            overrides={
                "name": "fleet-test",
                "num_classes": 4,
                "storage_resolution_mean": 96,
                "storage_resolution_std": 10,
            },
            num_images=8,
            seed=3,
        ),
        backbone=BackboneConfig(
            name="resnet-tiny", options={"num_classes": 4, "base_width": 4, "seed": 0}
        ),
        policy=PolicyConfig(name="static", resolution=32),
        ssim_thresholds={24: 0.9, 32: 0.92, 48: 0.95},
        serving=ServingConfig(
            arrivals=ArrivalsConfig(
                name="poisson", options={"rate_rps": 800.0, "seed": 5, "zipf_alpha": 1.0}
            ),
            num_requests=NUM_REQUESTS,
            cache=CacheConfig(capacity_bytes=cache_bytes) if cache_bytes else None,
            fleet=FleetConfig(
                num_shards=num_shards, overrides=overrides or {}, **fleet_kwargs
            ),
        ),
    )


class TestDeterminism:
    def test_same_seed_produces_identical_fleet_reports(self):
        first = Engine(fleet_config()).serve()
        second = Engine(fleet_config()).serve()
        assert isinstance(first, FleetReport)
        assert first == second
        assert first.format() == second.format()

    def test_router_seed_changes_the_partition(self):
        base = Engine(fleet_config(seed=7)).serve()
        reseeded = Engine(fleet_config(seed=8)).serve()
        counts = lambda report: [shard.num_requests for shard in report.shards]  # noqa: E731
        assert counts(base) != counts(reseeded)
        # ... but never the workload itself.
        assert base.num_requests == reseeded.num_requests == NUM_REQUESTS


class TestMergeCorrectness:
    @pytest.fixture(scope="class")
    def report(self) -> FleetReport:
        return Engine(fleet_config()).serve()

    def test_request_count_equals_sum_over_shards(self, report):
        assert report.num_requests == NUM_REQUESTS
        assert sum(shard.num_requests for shard in report.shards) == NUM_REQUESTS
        for shard in report.shards:
            if shard.report is not None:
                assert shard.report.num_requests == shard.num_requests

    def test_byte_totals_equal_the_sum_over_shards(self, report):
        live = [shard.report for shard in report.shards if shard.report is not None]
        assert report.fleet.bytes_from_store == sum(r.bytes_from_store for r in live)
        assert report.fleet.bytes_from_cache == sum(r.bytes_from_cache for r in live)
        assert report.fleet.baseline_bytes == sum(r.baseline_bytes for r in live)
        histogram: dict[int, int] = {}
        for shard_report in live:
            for resolution, count in shard_report.resolution_histogram.items():
                histogram[resolution] = histogram.get(resolution, 0) + count
        assert report.fleet.resolution_histogram == histogram

    def test_fleet_duration_spans_every_shard_timeline(self, report):
        live = [shard.report for shard in report.shards if shard.report is not None]
        # The fleet timeline (first arrival anywhere to last completion
        # anywhere) contains every shard's own timeline.
        assert all(report.fleet.duration_s >= r.duration_s for r in live)
        assert report.fleet.throughput_rps == pytest.approx(
            report.num_requests / report.fleet.duration_s
        )

    def test_load_imbalance_is_busiest_over_mean(self, report):
        counts = [shard.num_requests for shard in report.shards]
        mean = NUM_REQUESTS / report.num_shards
        assert report.load_imbalance == pytest.approx(max(counts) / mean)
        assert report.load_imbalance >= 1.0
        assert report.idle_shards == sum(1 for count in counts if count == 0)


class TestSingleShardEquivalence:
    def test_single_shard_fleet_reproduces_the_server_report(self):
        config = fleet_config(num_shards=1)
        engine = Engine(config)
        store, backbone = engine.build_store(), engine.build_backbone()
        trace = engine.build_trace()

        fleet_report = Engine(config, store=store, backbone=backbone).serve(trace)

        unsharded = replace(config, serving=replace(config.serving, fleet=None))
        server_report = Engine(unsharded, store=store, backbone=backbone).serve(trace)

        assert isinstance(fleet_report, FleetReport)
        assert fleet_report.num_shards == 1
        assert fleet_report.shards[0].report == server_report
        assert fleet_report.fleet == server_report
        assert fleet_report.fleet.format() == server_report.format()
        assert fleet_report.load_imbalance == 1.0


class TestFleetMechanics:
    def test_partition_preserves_order_and_covers_the_trace(self):
        engine = Engine(fleet_config())
        fleet = engine.build_fleet()
        trace = engine.build_trace()
        sub_traces = fleet.partition(trace)
        assert len(sub_traces) == fleet.num_shards
        merged = sorted(
            (request for sub in sub_traces for request in sub),
            key=lambda request: request.request_id,
        )
        assert merged == sorted(trace, key=lambda request: request.request_id)
        for shard, sub in enumerate(sub_traces):
            # Arrival order survives the split and keys route to this shard.
            times = [request.arrival_time for request in sub]
            assert times == sorted(times)
            assert all(fleet.router.route(request.key) == shard for request in sub)

    def test_per_shard_overrides_specialize_servers(self):
        config = fleet_config(
            num_shards=2,
            overrides={1: {"num_workers": 5, "cache": {"capacity_bytes": 60_000}}},
        )
        fleet = Engine(config).build_fleet()
        assert fleet.servers[0].config.num_workers == 2
        assert fleet.servers[0].cache.capacity_bytes == 150_000
        assert fleet.servers[1].config.num_workers == 5
        assert fleet.servers[1].cache.capacity_bytes == 60_000

    def test_shards_do_not_share_mutable_state(self):
        fleet = Engine(fleet_config()).build_fleet()
        caches = [server.cache for server in fleet.servers]
        policies = [server.policy for server in fleet.servers]
        assert len(set(map(id, caches))) == len(caches)
        assert len(set(map(id, policies))) == len(policies)
        # The store contents are immutable under serving, so sharing is safe.
        assert len({id(server.store) for server in fleet.servers}) == 1

    def test_empty_trace_and_empty_fleet_raise(self):
        engine = Engine(fleet_config())
        fleet = engine.build_fleet()
        with pytest.raises(ValueError, match="empty trace"):
            fleet.run([])
        with pytest.raises(ValueError, match="at least one server"):
            ShardedFleet([])

    def test_router_shard_mismatch_raises(self):
        engine = Engine(fleet_config(num_shards=2))
        servers = engine.build_fleet().servers
        with pytest.raises(ValueError, match="do not match"):
            ShardedFleet(servers, router=ConsistentHashRouter([0, 1, 2]))

    def test_closed_loop_traffic_rejects_sharding(self):
        config = fleet_config()
        config = replace(
            config,
            serving=replace(
                config.serving,
                arrivals=ArrivalsConfig(
                    name="closed-loop",
                    options={"num_clients": 2, "requests_per_client": 2, "seed": 0},
                ),
            ),
        )
        with pytest.raises(ValueError, match="open-loop"):
            Engine(config).serve()


class TestFleetConfigValidation:
    def test_round_trips_through_json(self):
        config = fleet_config(overrides={0: {"num_workers": 4}})
        assert EngineConfig.from_json(config.to_json()) == config

    def test_bad_shard_index_rejected(self):
        with pytest.raises(ValueError, match="shard index"):
            FleetConfig(num_shards=2, overrides={5: {"num_workers": 1}})

    def test_traffic_overrides_rejected(self):
        with pytest.raises(ValueError, match="fleet-wide"):
            FleetConfig(num_shards=2, overrides={0: {"num_requests": 5}})

    def test_unknown_override_field_fails_at_build_time(self):
        config = fleet_config(overrides={0: {"no_such_field": 1}})
        with pytest.raises(ValueError, match="no_such_field"):
            Engine(config).build_fleet()


class TestFleetControlPlane:
    def saturated_config(self, **serving_patch):
        config = fleet_config(num_shards=3)
        return replace(
            config,
            serving=replace(
                config.serving,
                arrivals=ArrivalsConfig(
                    name="poisson",
                    options={"rate_rps": 6000.0, "seed": 5, "zipf_alpha": 1.0},
                ),
                num_workers=1,
                **serving_patch,
            ),
        )

    def test_fleet_aggregates_drop_counters_across_shards(self):
        config = self.saturated_config(
            admission=AdmissionConfig(
                name="ewma", options={"alpha": 0.5, "depth_threshold": 2.0}
            )
        )
        report = Engine(config).serve()
        assert report.dropped_requests > 0
        assert report.dropped_requests == sum(
            shard.report.dropped_requests
            for shard in report.shards
            if shard.report is not None
        )
        served = sum(shard.num_requests for shard in report.shards)
        assert served + report.dropped_requests == NUM_REQUESTS
        assert report.fleet.num_requests == served
        assert 0.0 < report.drop_rate < 1.0

    def test_each_shard_gets_its_own_admission_policy(self):
        config = self.saturated_config(
            admission=AdmissionConfig(
                name="ewma", options={"alpha": 0.5, "depth_threshold": 2.0}
            )
        )
        fleet = Engine(config).build_fleet()
        policies = [server.admission for server in fleet.servers]
        assert len({id(policy) for policy in policies}) == len(policies)

    def test_per_shard_admission_override(self):
        config = fleet_config(
            num_shards=2,
            overrides={
                0: {"admission": {"name": "ewma", "options": {"depth_threshold": 5.0}}}
            },
        )
        fleet = Engine(config).build_fleet()
        assert type(fleet.servers[0].admission).__name__ == "EwmaAdmissionController"
        assert type(fleet.servers[1].admission).__name__ == "AlwaysAdmit"


class _EverythingToShardZero(ConsistentHashRouter):
    """Degenerate router: every key lands on shard 0 (others stay idle)."""

    def route(self, key):
        return 0


class TestLoadImbalanceGuard:
    def test_factor_unit_cases(self):
        assert load_imbalance_factor([]) == 1.0
        assert load_imbalance_factor([0, 0, 0]) == 1.0  # zero offered everywhere
        assert load_imbalance_factor([8]) == 1.0
        assert load_imbalance_factor([4, 2]) == pytest.approx(4 / 3)
        assert load_imbalance_factor([6, 0, 0]) == pytest.approx(3.0)

    def test_fleet_with_zero_offered_shards_reports_finite_imbalance(self):
        """Idle shards (zero offered requests) never blow up the imbalance
        column — the guard that matters once elastic remaps can leave a
        freshly added shard with no traffic at all."""
        import math

        engine = Engine(fleet_config(num_shards=3))
        servers = engine.build_fleet().servers
        fleet = ShardedFleet(servers, router=_EverythingToShardZero(range(3)))
        report = fleet.run(engine.build_trace())

        assert report.idle_shards == 2
        counts = [shard.num_requests for shard in report.shards]
        assert counts[1] == counts[2] == 0
        assert math.isfinite(report.load_imbalance)
        assert report.load_imbalance == pytest.approx(3.0)  # all load on 1 of 3
