"""Edge cases of the SLO fold: empty runs, single records, exact quantiles.

``build_report`` now has two implementations — the object fold and the
columnar fold over :class:`RequestRecords` — so every edge case is checked
through both, and the two are pinned equal on the boundaries where float
reductions are most fragile (exact percentile indices, single elements,
all-identical populations).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.metrics import (
    RequestRecords,
    ServedRequest,
    build_report,
)
from repro.storage.bandwidth import StorageBandwidthModel

BANDWIDTH = StorageBandwidthModel()


def make_record(
    request_id: int,
    latency: float = 0.010,
    label: int | None = 1,
    prediction: int = 1,
    batch_size: int = 2,
    resolution: int = 32,
) -> ServedRequest:
    arrival = 0.001 * request_id
    return ServedRequest(
        request_id=request_id,
        key=f"img{request_id % 4}",
        arrival_time=arrival,
        ready_time=arrival + latency * 0.4,
        dispatch_time=arrival + latency * 0.5,
        completion_time=arrival + latency,
        resolution=resolution,
        scans_read=2,
        bytes_from_store=1000,
        bytes_from_cache=200,
        total_bytes=5000,
        batch_size=batch_size,
        prediction=prediction,
        label=label,
    )


def columnar(records: list[ServedRequest]) -> RequestRecords:
    columns = RequestRecords()
    for record in records:
        columns.append_record(record)
    return columns


def both_reports(records: list[ServedRequest], **kwargs):
    kwargs.setdefault("bandwidth", BANDWIDTH)
    kwargs.setdefault("store_requests", len(records))
    return (
        build_report(records, **kwargs),
        build_report(columnar(records), **kwargs),
    )


class TestEmpty:
    def test_empty_list_contract(self):
        report = build_report([], bandwidth=BANDWIDTH, store_requests=0)
        assert report.num_requests == 0
        assert report.duration_s == 0.0
        assert report.throughput_rps == 0.0
        assert report.mean_latency_ms is None
        assert report.p50_latency_ms is None
        assert report.p95_latency_ms is None
        assert report.p99_latency_ms is None
        assert report.mean_batch_size is None
        assert report.accuracy is None
        assert report.resolution_histogram == {}

    def test_empty_records_match_empty_list(self):
        plain = build_report([], bandwidth=BANDWIDTH, store_requests=0)
        columnar_report = build_report(
            RequestRecords(), bandwidth=BANDWIDTH, store_requests=0
        )
        assert plain == columnar_report

    def test_empty_run_still_prices_prefetch_bytes(self):
        report = build_report(
            [], bandwidth=BANDWIDTH, store_requests=3, prefetch_bytes=30_000
        )
        assert report.prefetch_bytes == 30_000
        assert report.transfer_seconds > 0.0

    def test_empty_report_formats(self):
        report = build_report([], bandwidth=BANDWIDTH, store_requests=0)
        assert "requests served        0" in report.format()


class TestSingle:
    def test_single_record_percentiles_collapse(self):
        plain, cols = both_reports([make_record(0, latency=0.02)])
        assert plain == cols
        assert plain.num_requests == 1
        # Every percentile of a one-element population is that element.
        assert plain.p50_latency_ms == pytest.approx(20.0)
        assert plain.p50_latency_ms == plain.p95_latency_ms == plain.p99_latency_ms
        assert plain.mean_latency_ms == plain.p50_latency_ms
        assert plain.mean_batch_size == 2.0

    def test_single_unlabelled_record_has_no_accuracy(self):
        plain, cols = both_reports([make_record(0, label=None)])
        assert plain == cols
        assert plain.accuracy is None


class TestAccuracy:
    def test_accuracy_none_when_no_labels(self):
        records = [make_record(i, label=None) for i in range(5)]
        plain, cols = both_reports(records)
        assert plain == cols
        assert plain.accuracy is None

    def test_accuracy_over_labelled_subset_only(self):
        records = [
            make_record(0, label=1, prediction=1),
            make_record(1, label=None, prediction=0),
            make_record(2, label=2, prediction=0),
            make_record(3, label=None, prediction=2),
        ]
        plain, cols = both_reports(records)
        assert plain == cols
        # One correct out of the two labelled records; None-labelled ignored.
        assert plain.accuracy == pytest.approx(50.0)

    def test_zero_correct_is_zero_not_none(self):
        records = [make_record(i, label=1, prediction=0) for i in range(3)]
        plain, cols = both_reports(records)
        assert plain == cols
        assert plain.accuracy == 0.0


class TestQuantileBoundaries:
    def test_exact_percentile_indices(self):
        # 101 equally spaced latencies: every percentile lands exactly on a
        # sample, so linear interpolation must return it with no blending.
        records = [
            make_record(i, latency=0.001 * (i + 1)) for i in range(101)
        ]
        plain, cols = both_reports(records)
        assert plain == cols
        assert plain.p50_latency_ms == pytest.approx(51.0)
        assert plain.p95_latency_ms == pytest.approx(96.0)
        assert plain.p99_latency_ms == pytest.approx(100.0)

    def test_interpolation_between_samples(self):
        # Two samples: p50 interpolates the midpoint (numpy linear method).
        records = [make_record(0, latency=0.010), make_record(1, latency=0.030)]
        plain, cols = both_reports(records)
        assert plain == cols
        assert plain.p50_latency_ms == pytest.approx(20.0)

    def test_identical_latencies_are_degenerate(self):
        # Latencies are recomputed as completion - arrival, so they agree
        # with 5ms only to float precision — but every percentile of the
        # (near-)constant population must collapse to the same few ulps.
        records = [make_record(i, latency=0.005) for i in range(10)]
        plain, cols = both_reports(records)
        assert plain == cols
        assert plain.p50_latency_ms == pytest.approx(5.0)
        assert plain.p99_latency_ms == pytest.approx(plain.p50_latency_ms)


class TestColumnarEquivalence:
    def test_shuffled_append_order_is_sorted_by_request_id(self):
        # build_report sorts by request id; a completion order scramble must
        # not change a single reported bit on either path.
        rng = np.random.default_rng(5)
        records = [
            make_record(
                i,
                latency=float(rng.uniform(0.001, 0.05)),
                label=int(rng.integers(0, 3)),
                prediction=int(rng.integers(0, 3)),
                batch_size=int(rng.integers(1, 5)),
                resolution=int(rng.choice([24, 32, 48])),
            )
            for i in range(37)
        ]
        shuffled = list(records)
        rng.shuffle(shuffled)
        plain_sorted, cols_sorted = both_reports(records)
        plain_shuffled, cols_shuffled = both_reports(shuffled)
        assert plain_sorted == plain_shuffled == cols_sorted == cols_shuffled

    def test_materialize_round_trips(self):
        records = [make_record(i, label=None if i % 3 else i) for i in range(9)]
        assert columnar(records).materialize() == records

    def test_extend_concatenates(self):
        left = columnar([make_record(0), make_record(1)])
        right = columnar([make_record(2)])
        left.extend(right)
        assert len(left) == 3
        assert left.materialize()[-1] == make_record(2)

    def test_label_sentinel_is_none_safe(self):
        # -1 encodes None; a real label of 0 must survive the round trip.
        record = make_record(0, label=0)
        assert columnar([record]).materialize()[0].label == 0
        unlabelled = make_record(1, label=None)
        assert columnar([unlabelled]).materialize()[0].label is None
