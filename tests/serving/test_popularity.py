"""Popularity-model and Zipf-calibration tests.

The MLE fit is checked two ways: it must recover a known exponent from
synthetic power-law counts, and it must land the bundled published CDFs in
the alpha ranges their source papers report (Breslau et al. 1999: 0.64–0.83
for web proxies; CDN/VoD studies: roughly 0.8–1.1).
"""

import numpy as np
import pytest

from repro.api.config import PopularityConfig
from repro.api.registry import POPULARITY
from repro.serving.arrivals import PoissonArrivals, sample_keys
from repro.serving.popularity import (
    CDN_POPULARITY_CDFS,
    CalibratedPopularity,
    UniformPopularity,
    ZipfMandelbrotPopularity,
    ZipfPopularity,
    counts_from_cdf,
    fit_zipf,
    fit_zipf_to_dataset,
    fit_zipf_to_keys,
)

KEYS = [f"img{i}" for i in range(16)]


class TestModels:
    @pytest.mark.parametrize(
        "model",
        [
            UniformPopularity(),
            ZipfPopularity(alpha=0.8),
            ZipfMandelbrotPopularity(alpha=1.0, shift=5.0),
            CalibratedPopularity(),
        ],
    )
    def test_probabilities_are_a_distribution(self, model):
        probabilities = model.probabilities(50)
        assert probabilities.shape == (50,)
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(probabilities > 0)
        # Rank 0 is always the hottest (weakly, for uniform).
        assert np.all(np.diff(probabilities) <= 1e-15)

    def test_zipf_alpha_zero_is_uniform(self):
        assert np.allclose(
            ZipfPopularity(alpha=0.0).probabilities(10),
            UniformPopularity().probabilities(10),
        )

    def test_mandelbrot_shift_flattens_the_head(self):
        pure = ZipfPopularity(alpha=1.0).probabilities(100)
        shifted = ZipfMandelbrotPopularity(alpha=1.0, shift=10.0).probabilities(100)
        assert shifted[0] / shifted[1] < pure[0] / pure[1]

    def test_sampling_is_deterministic_under_a_seeded_rng(self):
        model = ZipfPopularity(alpha=1.2)
        first = model.sample(np.random.default_rng(7), KEYS, 100)
        second = model.sample(np.random.default_rng(7), KEYS, 100)
        assert first == second

    def test_sampling_prefers_hot_ranks(self):
        chosen = ZipfPopularity(alpha=1.5).sample(
            np.random.default_rng(0), KEYS, 2000
        )
        counts = {key: chosen.count(key) for key in KEYS}
        assert counts["img0"] > counts["img8"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity(alpha=-0.5)
        with pytest.raises(ValueError):
            ZipfMandelbrotPopularity(shift=-1.0)
        with pytest.raises(ValueError):
            UniformPopularity().probabilities(0)


class TestFit:
    @pytest.mark.parametrize("alpha", [0.4, 0.8, 1.3])
    def test_recovers_a_known_exponent_from_exact_counts(self, alpha):
        ranks = np.arange(500) + 1.0
        counts = 1e6 * ranks**-alpha
        assert fit_zipf(counts) == pytest.approx(alpha, abs=0.01)

    def test_recovers_the_exponent_from_sampled_keys(self):
        keys = [f"k{i}" for i in range(200)]
        chosen = ZipfPopularity(alpha=0.9).sample(
            np.random.default_rng(0), keys, 20000
        )
        assert fit_zipf_to_keys(chosen) == pytest.approx(0.9, abs=0.1)

    def test_fit_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            fit_zipf([5.0])
        with pytest.raises(ValueError):
            fit_zipf([0.0, 0.0])
        with pytest.raises(ValueError):
            fit_zipf_to_keys([])
        with pytest.raises(ValueError):
            fit_zipf_to_keys(["only-one-key"] * 10)

    def test_counts_from_cdf_conserves_total_mass(self):
        counts = counts_from_cdf((1, 10, 100), (0.2, 0.5, 1.0), total_requests=10_000)
        assert len(counts) == 100
        assert counts.sum() == pytest.approx(10_000, rel=0.01)

    def test_counts_from_cdf_validates_shape(self):
        with pytest.raises(ValueError):
            counts_from_cdf((1, 10), (0.2,))
        with pytest.raises(ValueError):
            counts_from_cdf((10, 1), (0.2, 0.5))
        with pytest.raises(ValueError):
            counts_from_cdf((1, 10), (0.5, 0.2))
        with pytest.raises(ValueError, match="positive"):
            counts_from_cdf((0, 10), (0.1, 0.5))
        with pytest.raises(ValueError):
            counts_from_cdf((), ())


class TestBundledDatasets:
    def test_bundled_alphas_land_in_published_ranges(self):
        assert 0.64 <= fit_zipf_to_dataset("web-proxy-breslau99") <= 0.83
        assert 0.80 <= fit_zipf_to_dataset("cdn-vod-longtail") <= 1.00
        assert 0.90 <= fit_zipf_to_dataset("cdn-web-objects") <= 1.10

    def test_unknown_dataset_lists_the_known_ones(self):
        with pytest.raises(KeyError, match="web-proxy-breslau99"):
            fit_zipf_to_dataset("nope")

    def test_every_dataset_has_a_description_and_consistent_shape(self):
        for name, spec in CDN_POPULARITY_CDFS.items():
            assert spec["description"], name
            assert len(spec["ranks"]) == len(spec["cdf"])


class TestFacadeWiring:
    def test_models_are_registered(self):
        for name in ("uniform", "zipf", "zipf-mandelbrot", "cdn-calibrated"):
            assert name in POPULARITY

    def test_registry_build_produces_a_working_model(self):
        model = POPULARITY.build("zipf-mandelbrot", alpha=0.9, shift=4.0)
        assert model.probabilities(10).sum() == pytest.approx(1.0)

    def test_calibrated_model_equals_the_fitted_zipf(self):
        model = CalibratedPopularity(dataset="cdn-vod-longtail")
        assert model.alpha == pytest.approx(fit_zipf_to_dataset("cdn-vod-longtail"))

    def test_arrival_processes_accept_a_popularity_model(self):
        skewed = PoissonArrivals(
            rate_rps=500.0, seed=1, popularity=ZipfPopularity(alpha=2.0)
        ).trace(KEYS, 500)
        flat = PoissonArrivals(rate_rps=500.0, seed=1).trace(KEYS, 500)
        hot = sum(1 for request in skewed if request.key == "img0")
        assert hot > sum(1 for request in flat if request.key == "img0")

    def test_sample_keys_model_takes_precedence_over_alpha(self):
        rng = np.random.default_rng(3)
        chosen = sample_keys(
            rng, KEYS, 200, zipf_alpha=0.0, popularity=ZipfPopularity(alpha=3.0)
        )
        assert chosen.count("img0") > 100

    def test_popularity_config_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            PopularityConfig(name="zipf", options={"alpha": -1.0})
        config = PopularityConfig(name="cdn-calibrated", options={"dataset": "x"})
        assert PopularityConfig.from_dict(config.to_dict()) == config
