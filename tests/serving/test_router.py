"""Property-based tests for the consistent-hash router.

The routing layer is only trustworthy if its lookup behaviour holds as an
invariant, not just on a happy path, so hypothesis drives the ring through
arbitrary shard sets, seeds and key populations:

* totality/determinism — every key maps to exactly one live shard, and the
  mapping is a pure function of (shards, virtual_nodes, seed);
* balance — with >= 64 virtual nodes per shard, no shard's slice of the
  hash space (and hence its expected key share) exceeds a constant factor
  of the fair share;
* minimal remapping — removing one shard remaps only the keys that shard
  owned; everyone else's assignment is untouched (the property that keeps
  the surviving shards' caches warm through a resize).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving.fleet import ConsistentHashRouter, ReplicaRouter

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

ring_params = st.fixed_dictionaries(
    {
        "num_shards": st.integers(min_value=2, max_value=8),
        "virtual_nodes": st.sampled_from([64, 96, 128]),
        "seed": st.integers(min_value=0, max_value=1000),
    }
)


def make_router(params) -> ConsistentHashRouter:
    return ConsistentHashRouter(
        range(params["num_shards"]),
        virtual_nodes=params["virtual_nodes"],
        seed=params["seed"],
    )


class TestTotality:
    @given(ring_params, st.lists(st.text(min_size=1), min_size=1, max_size=50))
    @settings(**_SETTINGS)
    def test_every_key_maps_to_exactly_one_live_shard(self, params, keys):
        router = make_router(params)
        live = set(router.shard_ids)
        for key in keys:
            shard = router.route(key)
            assert shard in live
            # Routing is deterministic: repeat calls and a freshly built
            # identical ring agree.
            assert router.route(key) == shard
            assert make_router(params).route(key) == shard

    def test_route_on_empty_ring_raises(self):
        router = ConsistentHashRouter([])
        with pytest.raises(ValueError, match="empty ring"):
            router.route("img0")

    def test_duplicate_and_unknown_shards_raise(self):
        router = ConsistentHashRouter([0, 1])
        with pytest.raises(ValueError, match="already on the ring"):
            router.add_shard(1)
        with pytest.raises(ValueError, match="not on the ring"):
            router.remove_shard(9)

    def test_invalid_virtual_nodes_raise(self):
        with pytest.raises(ValueError, match="virtual_nodes"):
            ConsistentHashRouter([0], virtual_nodes=0)


class TestBalance:
    @given(ring_params)
    @settings(**_SETTINGS)
    def test_shares_cover_the_whole_hash_space(self, params):
        router = make_router(params)
        shares = router.shard_shares()
        assert set(shares) == set(range(params["num_shards"]))
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(share > 0 for share in shares.values())

    @given(ring_params)
    @settings(**_SETTINGS)
    def test_ring_balance_is_bounded_with_64_plus_virtual_nodes(self, params):
        router = make_router(params)
        fair = 1.0 / params["num_shards"]
        for share in router.shard_shares().values():
            # With >= 64 vnodes per shard the arc-length concentration keeps
            # every shard within ~2x of fair in practice; 2.5x is the
            # enforced envelope.
            assert share <= 2.5 * fair
            assert share >= fair / 4.0


class TestMinimalRemapping:
    @given(
        ring_params,
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=7),
    )
    @settings(**_SETTINGS)
    def test_removing_one_shard_remaps_only_its_keys(self, params, key_seed, victim_index):
        router = make_router(params)
        victim = router.shard_ids[victim_index % router.num_shards]
        keys = [f"key-{key_seed}-{i}" for i in range(256)]
        before = {key: router.route(key) for key in keys}

        router.remove_shard(victim)
        after = {key: router.route(key) for key in keys}

        for key in keys:
            if before[key] == victim:
                assert after[key] != victim  # remapped somewhere live
            else:
                assert after[key] == before[key]  # untouched

    @given(ring_params)
    @settings(**_SETTINGS)
    def test_add_then_remove_restores_the_original_mapping(self, params):
        router = make_router(params)
        keys = [f"img{i}" for i in range(128)]
        before = {key: router.route(key) for key in keys}
        new_shard = params["num_shards"]  # an id not yet on the ring

        router.add_shard(new_shard)
        during = {key: router.route(key) for key in keys}
        # Adding a shard only steals keys for the new shard.
        for key in keys:
            assert during[key] == before[key] or during[key] == new_shard

        router.remove_shard(new_shard)
        assert {key: router.route(key) for key in keys} == before


replica_params = st.fixed_dictionaries(
    {
        "num_shards": st.integers(min_value=2, max_value=8),
        "replicas": st.integers(min_value=1, max_value=3),
        "virtual_nodes": st.sampled_from([64, 96]),
        "seed": st.integers(min_value=0, max_value=1000),
    }
)


def make_replica_router(params) -> ReplicaRouter:
    return ReplicaRouter(
        range(params["num_shards"]),
        replicas=params["replicas"],
        virtual_nodes=params["virtual_nodes"],
        seed=params["seed"],
    )


class TestReplicaRouter:
    @given(replica_params, st.lists(st.text(min_size=1), min_size=1, max_size=30))
    @settings(**_SETTINGS)
    def test_replica_sets_are_distinct_live_shards_led_by_the_primary(
        self, params, keys
    ):
        router = make_replica_router(params)
        live = set(router.shard_ids)
        expected_size = min(params["replicas"], params["num_shards"])
        for key in keys:
            group = router.replica_set(key)
            assert len(group) == expected_size
            assert len(set(group)) == len(group)  # distinct members
            assert set(group) <= live
            assert group[0] == router.route(key)  # primary == ring answer

    @given(
        replica_params,
        st.lists(st.text(min_size=1), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(**_SETTINGS)
    def test_route_request_is_a_deterministic_member_of_the_replica_set(
        self, params, keys, request_id
    ):
        router = make_replica_router(params)
        for key in keys:
            shard = router.route_request(key, request_id)
            assert shard in router.replica_set(key)
            assert router.route_request(key, request_id) == shard
            assert make_replica_router(params).route_request(key, request_id) == shard

    @given(replica_params)
    @settings(**_SETTINGS)
    def test_single_replica_degenerates_to_the_plain_ring(self, params):
        router = ReplicaRouter(
            range(params["num_shards"]),
            replicas=1,
            virtual_nodes=params["virtual_nodes"],
            seed=params["seed"],
        )
        ring = ConsistentHashRouter(
            range(params["num_shards"]),
            virtual_nodes=params["virtual_nodes"],
            seed=params["seed"],
        )
        for index in range(64):
            key = f"img{index}"
            assert router.route(key) == ring.route(key)
            assert router.route_request(key, index) == ring.route(key)
            assert router.replica_set(key) == [ring.route(key)]

    @given(replica_params, st.integers(min_value=0, max_value=7))
    @settings(**_SETTINGS)
    def test_removing_one_shard_only_disturbs_sets_that_held_it(
        self, params, victim_index
    ):
        router = make_replica_router(params)
        victim = router.shard_ids[victim_index % router.num_shards]
        keys = [f"key-{i}" for i in range(128)]
        before = {key: router.replica_set(key) for key in keys}

        router.remove_shard(victim)
        after = {key: router.replica_set(key) for key in keys}

        for key in keys:
            if victim in before[key]:
                assert victim not in after[key]
                # Surviving members keep their relative ring order.
                survivors = [shard for shard in before[key] if shard != victim]
                assert after[key][: len(survivors)] == survivors
            elif router.num_shards >= params["replicas"]:
                assert after[key] == before[key]  # untouched (minimal remap)

    def test_route_request_on_empty_ring_raises(self):
        router = ReplicaRouter([0], replicas=2)
        router.remove_shard(0)
        with pytest.raises(ValueError, match="empty ring"):
            router.route_request("img0", 1)

    def test_invalid_replicas_raise(self):
        with pytest.raises(ValueError, match="replicas"):
            ReplicaRouter([0, 1], replicas=0)
