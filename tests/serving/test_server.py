"""Event-loop integration tests: determinism, cache savings, load adaptation.

These drive the real pipeline pieces (progressive store, tiny numpy models,
calibrated scan reads) through the serving simulator, so they double as the
acceptance tests of the subsystem: identical configurations must produce
identical SLO reports, and the scan-prefix cache must demonstrably cut the
bytes read from the store on the same trace.
"""

import numpy as np
import pytest

from repro.codec.progressive import ProgressiveEncoder
from repro.core.policies import (
    DynamicResolutionPolicy,
    StaticResolutionPolicy,
)
from repro.core.scale_model import ScaleModelPredictor
from repro.nn.mobilenet import mobilenet_tiny
from repro.nn.resnet import resnet_tiny
from repro.serving import (
    ClosedLoopClients,
    InferenceServer,
    LoadAdaptiveResolutionPolicy,
    OnOffArrivals,
    PoissonArrivals,
    ScanCache,
    ServerConfig,
)
from repro.serving.batcher import LinearBatchCost
from repro.storage.policy import ScanReadPolicy
from repro.storage.store import ImageStore

RESOLUTIONS = (24, 32, 48)


@pytest.fixture(scope="module")
def serving_store(tiny_imagenet_like):
    """A progressive store over a dozen tiny synthetic images."""
    store = ImageStore(encoder=ProgressiveEncoder(quality=85))
    for sample in list(tiny_imagenet_like)[:12]:
        store.put(f"img{sample.index}", sample.render(), label=sample.label)
    return store


@pytest.fixture(scope="module")
def backbone():
    return resnet_tiny(num_classes=4, base_width=4, seed=0)


@pytest.fixture(scope="module")
def read_policy():
    return ScanReadPolicy(ssim_thresholds={24: 0.90, 32: 0.92, 48: 0.95})


def make_dynamic_policy():
    """Fresh policy per run so mutable policy state cannot leak across runs."""
    scale_model = mobilenet_tiny(num_classes=len(RESOLUTIONS), seed=1)
    predictor = ScaleModelPredictor(scale_model, RESOLUTIONS, scale_resolution=24)
    return DynamicResolutionPolicy(predictor)


def make_config(**overrides):
    defaults = dict(
        resolutions=RESOLUTIONS,
        scale_resolution=24,
        num_workers=2,
        max_batch_size=4,
        max_wait_s=0.004,
        scale_model_seconds=0.0004,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def run_trace(store, backbone, read_policy, trace, cache=None, policy=None, **config):
    server = InferenceServer(
        store,
        backbone,
        policy or make_dynamic_policy(),
        make_config(**config),
        read_policy=read_policy,
        cache=cache,
    )
    return server.run(trace)


class TestDeterminism:
    def test_identical_configs_produce_identical_reports(
        self, serving_store, backbone, read_policy
    ):
        trace = PoissonArrivals(rate_rps=400.0, seed=5, zipf_alpha=1.0).trace(
            serving_store.keys(), 40
        )
        first = run_trace(
            serving_store, backbone, read_policy, trace, cache=ScanCache(300_000)
        )
        second = run_trace(
            serving_store, backbone, read_policy, trace, cache=ScanCache(300_000)
        )
        assert first == second
        assert first.format() == second.format()

    def test_different_traffic_seeds_change_the_report(
        self, serving_store, backbone, read_policy
    ):
        keys = serving_store.keys()
        a = PoissonArrivals(rate_rps=400.0, seed=5).trace(keys, 30)
        b = PoissonArrivals(rate_rps=400.0, seed=6).trace(keys, 30)
        report_a = run_trace(serving_store, backbone, read_policy, a)
        report_b = run_trace(serving_store, backbone, read_policy, b)
        assert report_a != report_b


class TestCacheEffect:
    def test_cache_reduces_bytes_read_from_store(
        self, serving_store, backbone, read_policy
    ):
        """Acceptance criterion: same trace, with and without the cache tier."""
        trace = PoissonArrivals(rate_rps=400.0, seed=5, zipf_alpha=1.0).trace(
            serving_store.keys(), 40
        )
        cached = run_trace(
            serving_store, backbone, read_policy, trace, cache=ScanCache(300_000)
        )
        cacheless = run_trace(serving_store, backbone, read_policy, trace, cache=None)
        assert cached.bytes_from_store < cacheless.bytes_from_store
        assert cached.bytes_from_cache > 0
        assert cacheless.bytes_from_cache == 0
        assert cached.cache_hit_rate > 0.0
        assert cacheless.cache_hit_rate is None
        # The cache changes byte provenance, not what was served.
        assert cached.num_requests == cacheless.num_requests == len(trace)
        assert cached.resolution_histogram == cacheless.resolution_histogram
        assert cached.accuracy == cacheless.accuracy

    def test_warm_cache_serves_exactly_the_consumed_bytes(
        self, serving_store, backbone, read_policy
    ):
        """Regression: stage-2 hits on pre-warmed keys must count as cache bytes.

        A fully warm cache serves every byte a request consumes, so the warm
        run's cache bytes must equal the bytes a cache-less run of the same
        trace pulls from the store.
        """
        trace = PoissonArrivals(rate_rps=400.0, seed=5, zipf_alpha=1.0).trace(
            serving_store.keys(), 20
        )
        cacheless = run_trace(serving_store, backbone, read_policy, trace, cache=None)
        cache = ScanCache(500_000)  # big enough that nothing is evicted
        run_trace(serving_store, backbone, read_policy, trace, cache=cache)  # warm it
        warm = run_trace(serving_store, backbone, read_policy, trace, cache=cache)
        assert warm.bytes_from_store == 0
        assert warm.bytes_from_cache == cacheless.bytes_from_store

    def test_reused_server_reports_per_run_metrics(
        self, serving_store, backbone, read_policy
    ):
        """Regression: a second run() must not inherit the first run's tallies."""
        trace = PoissonArrivals(rate_rps=400.0, seed=5, zipf_alpha=1.0).trace(
            serving_store.keys(), 20
        )
        policy = LoadAdaptiveResolutionPolicy(
            make_dynamic_policy(), RESOLUTIONS, queue_threshold=4
        )
        server = InferenceServer(
            serving_store,
            backbone,
            policy,
            make_config(),
            read_policy=read_policy,
            cache=ScanCache(500_000),
        )
        first = server.run(trace)
        second = server.run(trace)
        assert second.num_requests == len(trace)
        assert second.degraded_requests <= second.num_requests
        # The cache stays warm across runs, so the second run fetches less...
        assert second.bytes_from_store <= first.bytes_from_store
        # ...and its hit rate reflects this run only (never above 100%).
        assert 0.0 <= second.cache_hit_rate <= 1.0

    def test_transfer_cost_tracks_store_bytes(self, serving_store, backbone, read_policy):
        trace = PoissonArrivals(rate_rps=400.0, seed=5, zipf_alpha=1.0).trace(
            serving_store.keys(), 30
        )
        cached = run_trace(
            serving_store, backbone, read_policy, trace, cache=ScanCache(300_000)
        )
        cacheless = run_trace(serving_store, backbone, read_policy, trace, cache=None)
        assert cached.transfer_dollars < cacheless.transfer_dollars


class TestServingBehaviour:
    def test_every_request_is_served_exactly_once(
        self, serving_store, backbone, read_policy
    ):
        trace = OnOffArrivals(
            on_rate_rps=800.0, mean_on_s=0.03, mean_off_s=0.1, seed=2
        ).trace(serving_store.keys(), 30)
        report = run_trace(serving_store, backbone, read_policy, trace)
        assert report.num_requests == len(trace)
        assert sum(report.resolution_histogram.values()) == len(trace)

    def test_batches_respect_max_batch_size(self, serving_store, backbone, read_policy):
        trace = PoissonArrivals(rate_rps=2000.0, seed=1).trace(serving_store.keys(), 24)
        server = InferenceServer(
            serving_store,
            backbone,
            StaticResolutionPolicy(32),
            make_config(max_batch_size=3, num_workers=1),
            read_policy=read_policy,
        )
        report = server.run(trace)
        assert 1.0 <= report.mean_batch_size <= 3.0

    def test_latency_percentiles_are_ordered(self, serving_store, backbone, read_policy):
        trace = PoissonArrivals(rate_rps=600.0, seed=3).trace(serving_store.keys(), 30)
        report = run_trace(serving_store, backbone, read_policy, trace)
        assert 0 < report.p50_latency_ms <= report.p95_latency_ms <= report.p99_latency_ms
        assert report.throughput_rps > 0
        assert report.duration_s > 0

    def test_closed_loop_serves_the_full_quota(self, serving_store, backbone, read_policy):
        clients = ClosedLoopClients(
            num_clients=3, think_time_s=0.002, requests_per_client=4, seed=9
        )
        server = InferenceServer(
            serving_store,
            backbone,
            StaticResolutionPolicy(32),
            make_config(num_workers=1),
            read_policy=read_policy,
        )
        report = server.run_closed_loop(clients, serving_store.keys())
        assert report.num_requests == clients.total_requests

    def test_empty_trace_is_rejected(self, serving_store, backbone, read_policy):
        server = InferenceServer(
            serving_store,
            backbone,
            StaticResolutionPolicy(32),
            make_config(),
            read_policy=read_policy,
        )
        with pytest.raises(ValueError):
            server.run([])


class TestLoadAdaptation:
    def test_overload_degrades_resolution_and_sheds_bytes(
        self, serving_store, backbone, read_policy
    ):
        """A slow single worker builds a deep queue; the adaptive policy sheds."""
        trace = PoissonArrivals(rate_rps=2000.0, seed=4).trace(serving_store.keys(), 30)

        def run(policy):
            server = InferenceServer(
                serving_store,
                backbone,
                policy,
                make_config(num_workers=1, max_batch_size=4, max_wait_s=0.002),
                read_policy=read_policy,
                batch_cost=LinearBatchCost(per_item_seconds=0.01, fixed_seconds=0.01),
            )
            return server.run(trace)

        rigid = run(StaticResolutionPolicy(48))
        adaptive_policy = LoadAdaptiveResolutionPolicy(
            StaticResolutionPolicy(48), RESOLUTIONS, queue_threshold=4
        )
        adaptive = run(adaptive_policy)

        assert adaptive_policy.degraded_requests > 0
        assert adaptive.degraded_requests == adaptive_policy.degraded_requests
        assert min(adaptive.resolution_histogram) < 48
        assert rigid.resolution_histogram == {48: len(trace)}

    def test_no_degradation_below_threshold(self):
        inner = StaticResolutionPolicy(48)
        policy = LoadAdaptiveResolutionPolicy(inner, RESOLUTIONS, queue_threshold=8)
        policy.observe_queue_depth(8)
        assert policy.select(np.empty(0)) == 48
        assert policy.degraded_requests == 0

    def test_degradation_scales_with_overload_and_is_capped(self):
        inner = StaticResolutionPolicy(48)
        policy = LoadAdaptiveResolutionPolicy(inner, RESOLUTIONS, queue_threshold=4)
        policy.observe_queue_depth(5)  # one threshold multiple -> one step
        assert policy.select(np.empty(0)) == 32
        policy.observe_queue_depth(9)  # two multiples -> two steps
        assert policy.select(np.empty(0)) == 24
        policy.observe_queue_depth(1000)  # cannot go below the ladder floor
        assert policy.select(np.empty(0)) == 24

    def test_overload_never_raises_a_below_ladder_choice(self):
        """Shedding load must not upgrade a choice below the ladder floor."""
        inner = StaticResolutionPolicy(16)  # below the (24, 32, 48) ladder
        policy = LoadAdaptiveResolutionPolicy(inner, RESOLUTIONS, queue_threshold=2)
        policy.observe_queue_depth(100)
        assert policy.select(np.empty(0)) == 16
        assert policy.degraded_requests == 0
