"""Direct unit tests for the SLO percentile/aggregation math.

``build_report`` was previously only exercised through whole server runs;
these tests pin its arithmetic down on hand-built request records: empty
traces, single-request traces, latency ties, byte provenance sums and the
deterministic text rendering.
"""

import math

import pytest

from repro.serving.cache import CacheStats
from repro.serving.metrics import ServedRequest, build_report
from repro.storage.bandwidth import StorageBandwidthModel

BANDWIDTH = StorageBandwidthModel()


def record(
    request_id=0,
    arrival=0.0,
    latency=0.010,
    resolution=32,
    bytes_from_store=1000,
    bytes_from_cache=0,
    total_bytes=4000,
    batch_size=1,
    prediction=1,
    label=1,
) -> ServedRequest:
    """A ServedRequest with a given latency and a plausible timeline inside it."""
    completion = arrival + latency
    return ServedRequest(
        request_id=request_id,
        key=f"img{request_id}",
        arrival_time=arrival,
        ready_time=arrival + 0.25 * latency,
        dispatch_time=arrival + 0.5 * latency,
        completion_time=completion,
        resolution=resolution,
        scans_read=3,
        bytes_from_store=bytes_from_store,
        bytes_from_cache=bytes_from_cache,
        total_bytes=total_bytes,
        batch_size=batch_size,
        prediction=prediction,
        label=label,
    )


class TestEdgeCases:
    def test_empty_trace_yields_a_well_defined_empty_report(self):
        # Regression: this used to raise, which made "every arrival was
        # dropped" unreportable once admission control existed.
        report = build_report([], bandwidth=BANDWIDTH, store_requests=0)
        assert report.num_requests == 0
        assert report.duration_s == 0.0
        assert report.throughput_rps == 0.0
        assert report.mean_latency_ms is None
        assert report.p50_latency_ms is None
        assert report.p95_latency_ms is None
        assert report.p99_latency_ms is None
        assert report.mean_queue_wait_ms is None
        assert report.mean_batch_size is None
        assert report.accuracy is None
        assert report.bytes_from_store == 0
        assert report.baseline_bytes == 0
        assert report.resolution_histogram == {}
        # The empty report still formats and round-trips deterministically.
        assert "requests served        0" in report.format()
        assert build_report([], bandwidth=BANDWIDTH, store_requests=0) == report

    def test_empty_trace_keeps_drop_accounting(self):
        report = build_report(
            [], bandwidth=BANDWIDTH, store_requests=0, dropped_requests=7
        )
        assert report.dropped_requests == 7
        assert report.offered_requests == 7
        assert report.drop_rate == 1.0
        assert "requests dropped       7" in report.format()

    def test_single_request_trace(self):
        report = build_report([record(latency=0.02)], bandwidth=BANDWIDTH, store_requests=1)
        assert report.num_requests == 1
        assert report.duration_s == pytest.approx(0.02)
        assert report.throughput_rps == pytest.approx(50.0)
        # With one sample every percentile is that sample.
        assert (
            report.mean_latency_ms
            == report.p50_latency_ms
            == report.p95_latency_ms
            == report.p99_latency_ms
            == pytest.approx(20.0)
        )
        assert report.mean_queue_wait_ms == pytest.approx(5.0)
        assert report.mean_batch_size == 1.0
        assert report.resolution_histogram == {32: 1}

    def test_zero_duration_reports_infinite_throughput(self):
        # Degenerate but representable: completion == arrival.
        report = build_report([record(latency=0.0)], bandwidth=BANDWIDTH, store_requests=1)
        assert report.duration_s == 0.0
        assert math.isinf(report.throughput_rps)

    def test_unlabelled_requests_make_accuracy_none(self):
        # None rather than NaN: NaN is invalid strict JSON and never
        # compares equal, which would break the Report round-trip contract.
        report = build_report(
            [record(label=None)], bandwidth=BANDWIDTH, store_requests=1
        )
        assert report.accuracy is None
        assert "accuracy               n/a" in report.format()
        from repro.api.reports import Report

        assert Report.from_json(report.to_json()) == report


class TestPercentiles:
    def test_latency_ties_collapse_all_percentiles(self):
        served = [record(request_id=i, arrival=0.001 * i, latency=0.010) for i in range(10)]
        report = build_report(served, bandwidth=BANDWIDTH, store_requests=10)
        # All-identical latencies (up to float noise in completion - arrival)
        # collapse every percentile onto the common value.
        assert report.p50_latency_ms == pytest.approx(10.0)
        assert report.p95_latency_ms == pytest.approx(10.0)
        assert report.p99_latency_ms == pytest.approx(10.0)

    def test_percentiles_are_monotone_and_interpolated(self):
        served = [
            record(request_id=i, arrival=0.0, latency=0.001 * (i + 1)) for i in range(100)
        ]
        report = build_report(served, bandwidth=BANDWIDTH, store_requests=100)
        assert report.p50_latency_ms <= report.p95_latency_ms <= report.p99_latency_ms
        # Latencies 1..100 ms: numpy's linear interpolation puts p50 at 50.5.
        assert report.p50_latency_ms == pytest.approx(50.5)
        assert report.mean_latency_ms == pytest.approx(50.5)

    def test_report_is_order_independent(self):
        served = [record(request_id=i, arrival=0.002 * i, latency=0.001 * (i + 1)) for i in range(7)]
        forward = build_report(served, bandwidth=BANDWIDTH, store_requests=7)
        backward = build_report(list(reversed(served)), bandwidth=BANDWIDTH, store_requests=7)
        assert forward == backward


class TestAggregation:
    def test_byte_provenance_and_savings(self):
        served = [
            record(request_id=0, bytes_from_store=1000, bytes_from_cache=0, total_bytes=5000),
            record(request_id=1, bytes_from_store=0, bytes_from_cache=3000, total_bytes=5000),
        ]
        report = build_report(served, bandwidth=BANDWIDTH, store_requests=1)
        assert report.bytes_from_store == 1000
        assert report.bytes_from_cache == 3000
        assert report.baseline_bytes == 10_000
        assert report.bytes_saved == 9000
        assert report.relative_bytes_saved == pytest.approx(0.9)

    def test_transfer_pricing_matches_the_bandwidth_model(self):
        served = [record(bytes_from_store=50_000)]
        report = build_report(served, bandwidth=BANDWIDTH, store_requests=3)
        estimate = BANDWIDTH.estimate(50_000, num_requests=3)
        assert report.transfer_seconds == estimate.seconds
        assert report.transfer_dollars == estimate.dollars

    def test_transfer_pricing_includes_prefetch_traffic(self):
        # Prefetched bytes ride real store GETs, so they are priced with
        # the demand bytes even though no request waited on them.
        served = [record(bytes_from_store=50_000)]
        report = build_report(
            served, bandwidth=BANDWIDTH, store_requests=4, prefetch_bytes=10_000
        )
        estimate = BANDWIDTH.estimate(60_000, num_requests=4)
        assert report.transfer_seconds == estimate.seconds
        assert report.transfer_dollars == estimate.dollars

    def test_accuracy_counts_only_labelled_requests(self):
        served = [
            record(request_id=0, prediction=1, label=1),
            record(request_id=1, prediction=2, label=1),
            record(request_id=2, prediction=0, label=None),
        ]
        report = build_report(served, bandwidth=BANDWIDTH, store_requests=3)
        assert report.accuracy == pytest.approx(50.0)

    def test_cache_stats_and_degradation_flow_through(self):
        stats = CacheStats(lookups=10, hits=6, partial_hits=2, misses=2)
        report = build_report(
            [record()],
            bandwidth=BANDWIDTH,
            store_requests=1,
            cache_stats=stats,
            degraded_requests=4,
        )
        assert report.cache_hit_rate == pytest.approx(0.8)
        assert report.degraded_requests == 4


class TestFormat:
    def test_format_is_deterministic_and_complete(self):
        served = [record(request_id=i, resolution=24 if i % 2 else 48) for i in range(4)]
        stats = CacheStats(lookups=4, hits=2, misses=2)
        report = build_report(
            [*served],
            bandwidth=BANDWIDTH,
            store_requests=4,
            cache_stats=stats,
            degraded_requests=1,
        )
        text = report.format()
        assert text == report.format()
        assert "requests served        4" in text
        assert "cache hit rate         50.0 %" in text
        assert "degraded requests      1" in text
        # Histogram renders in ascending resolution order.
        assert text.index("24px: 2") < text.index("48px: 2")

    def test_format_omits_absent_sections(self):
        report = build_report([record()], bandwidth=BANDWIDTH, store_requests=1)
        text = report.format()
        assert "cache hit rate" not in text
        assert "degraded requests" not in text
