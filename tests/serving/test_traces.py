"""Trace schema, loaders, recorder, and record→replay round-trip tests.

The round-trip property is the heart of workload realism: a run recorded
through :class:`TraceRecorder` and replayed through
:class:`TraceReplayArrivals` at ``speedup=1`` must reproduce the original
arrival times and keys *exactly* — and therefore the original SLO report
byte-for-byte.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import EngineConfig
from repro.api.engine import Engine
from repro.serving.arrivals import Request
from repro.serving.events import RequestAdmitted, RequestArrived
from repro.serving.traces import (
    TraceFormatError,
    TraceRecord,
    TraceRecorder,
    load_trace,
    save_trace,
)
from repro.serving.workload import TraceReplayArrivals

KEYS = [f"img{i}" for i in range(6)]


def make_records(times, keys):
    return tuple(
        TraceRecord(timestamp=time, key=key) for time, key in zip(times, keys)
    )


class TestTraceRecordValidation:
    def test_rejects_negative_timestamp(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(timestamp=-0.1, key="img0")

    def test_rejects_non_finite_timestamp(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(timestamp=float("nan"), key="img0")

    def test_rejects_empty_key(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(timestamp=0.0, key="")

    def test_rejects_negative_size(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(timestamp=0.0, key="img0", size_bytes=-1)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(timestamp=0.0, key="img0", deadline_s=0.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(TraceFormatError, match="unknown trace field"):
            TraceRecord.from_dict({"timestamp": 0.0, "key": "img0", "nope": 1})

    def test_from_dict_rejects_missing_required_fields(self):
        with pytest.raises(TraceFormatError, match="missing required"):
            TraceRecord.from_dict({"timestamp": 0.0})

    def test_optional_fields_survive_a_dict_round_trip(self):
        record = TraceRecord(timestamp=1.5, key="img0", size_bytes=42, deadline_s=0.2)
        assert TraceRecord.from_dict(record.to_dict()) == record


class TestSaveLoad:
    @pytest.mark.parametrize("extension", ["jsonl", "csv"])
    def test_round_trip_is_exact(self, tmp_path, extension):
        # Awkward floats on purpose: exactness must not depend on pretty values.
        times = [0.1 + 1.0 / 3.0 * i for i in range(20)]
        records = make_records(times, [KEYS[i % len(KEYS)] for i in range(20)])
        path = str(tmp_path / f"trace.{extension}")
        assert save_trace(records, path) == 20
        loaded = load_trace(path)
        assert tuple(loaded) == records

    def test_annotations_round_trip_in_both_formats(self, tmp_path):
        records = (
            TraceRecord(timestamp=0.0, key="img0", size_bytes=10, deadline_s=0.5),
            TraceRecord(timestamp=1.0, key="img1"),
        )
        for extension in ("jsonl", "csv"):
            path = str(tmp_path / f"trace.{extension}")
            save_trace(records, path)
            assert tuple(load_trace(path)) == records

    def test_unknown_extension_is_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot infer trace format"):
            load_trace(str(tmp_path / "trace.txt"))

    def test_empty_trace_is_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="no records"):
            load_trace(str(path))


class TestMalformedFiles:
    def test_invalid_json_line_names_path_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"timestamp": 0.0, "key": "img0"}\n{oops\n')
        with pytest.raises(TraceFormatError, match=r"bad\.jsonl:2.*invalid JSON"):
            load_trace(str(path))

    def test_non_object_json_line_is_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(TraceFormatError, match="expected a JSON object"):
            load_trace(str(path))

    def test_negative_timestamp_in_file_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"timestamp": 0.0, "key": "img0"}\n{"timestamp": -1.0, "key": "img0"}\n'
        )
        with pytest.raises(TraceFormatError, match=r"bad\.jsonl:2"):
            load_trace(str(path))

    def test_unknown_csv_column_is_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,key,color\n0.0,img0,red\n")
        with pytest.raises(TraceFormatError, match="unknown CSV column"):
            load_trace(str(path))

    def test_non_numeric_csv_timestamp_is_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,key\nsoon,img0\n")
        with pytest.raises(TraceFormatError, match="not a number"):
            load_trace(str(path))

    def test_non_integer_csv_size_is_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,key,size_bytes\n0.0,img0,big\n")
        with pytest.raises(TraceFormatError, match="not an integer"):
            load_trace(str(path))


@st.composite
def arrival_streams(draw):
    """Strictly increasing arrival times with keys from a small catalogue."""
    gaps = draw(
        st.lists(
            st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    times, clock = [], 0.0
    for gap in gaps:
        clock += gap
        times.append(clock)
    keys = draw(
        st.lists(
            st.sampled_from(KEYS), min_size=len(times), max_size=len(times)
        )
    )
    return times, keys


class TestRecorderRoundTrip:
    def feed(self, recorder, times, keys):
        for index, (time, key) in enumerate(zip(times, keys)):
            request = Request(request_id=index, key=key, arrival_time=time)
            recorder.on_event(RequestArrived(time=time, request=request, queue_depth=0))

    @given(arrival_streams())
    @settings(max_examples=50, deadline=None)
    def test_record_then_replay_is_exact_at_speedup_one(self, stream):
        times, keys = stream
        recorder = TraceRecorder()
        self.feed(recorder, times, keys)
        replayed = TraceReplayArrivals(records=tuple(recorder.records)).trace(
            KEYS, len(times)
        )
        assert [request.arrival_time for request in replayed] == times
        assert [request.key for request in replayed] == keys

    @given(stream=arrival_streams())
    @settings(max_examples=25, deadline=None)
    def test_round_trip_survives_the_jsonl_format(self, tmp_path_factory, stream):
        times, keys = stream
        recorder = TraceRecorder()
        self.feed(recorder, times, keys)
        path = str(tmp_path_factory.mktemp("traces") / "round.jsonl")
        recorder.save(path)
        replayed = TraceReplayArrivals(trace_path=path).trace(KEYS, len(times))
        assert [request.arrival_time for request in replayed] == times
        assert [request.key for request in replayed] == keys

    def test_admission_annotates_size_bytes(self):
        recorder = TraceRecorder()
        request = Request(request_id=0, key="img0", arrival_time=0.5)
        recorder.on_event(RequestArrived(time=0.5, request=request, queue_depth=0))
        recorder.on_event(
            RequestAdmitted(
                time=0.5,
                request=request,
                resolution=24,
                scans_read=2,
                bytes_from_store=100,
                bytes_from_cache=40,
                ready_time=0.6,
            )
        )
        (record,) = recorder.records
        assert record.size_bytes == 140

    def test_clear_empties_the_recorder(self):
        recorder = TraceRecorder()
        self.feed(recorder, [0.1], ["img0"])
        recorder.clear()
        assert recorder.records == []


def tiny_serving_config(arrivals: dict) -> EngineConfig:
    """A fast single-server scenario (linear batch cost, tiny store)."""
    return EngineConfig.from_dict(
        {
            "resolutions": [24, 32],
            "scale_resolution": 24,
            "store": {
                "profile": "imagenet-like",
                "overrides": {
                    "name": "trace-test",
                    "num_classes": 4,
                    "storage_resolution_mean": 64,
                    "storage_resolution_std": 5,
                },
                "num_images": 8,
                "seed": 5,
            },
            "backbone": {
                "name": "resnet-tiny",
                "options": {"num_classes": 4, "base_width": 4, "seed": 0},
            },
            "policy": {"name": "static", "resolution": 24},
            "serving": {
                "arrivals": arrivals,
                "num_requests": 60,
                "num_workers": 2,
                "max_batch_size": 4,
                "max_wait_s": 0.002,
                "cache": {"name": "scan-lru", "capacity_bytes": 100000},
            },
        }
    )


class TestEndToEndRoundTrip:
    def test_recorded_run_replays_to_an_identical_report(self, tmp_path):
        config = tiny_serving_config(
            {"name": "onoff", "options": {"on_rate_rps": 1500.0, "seed": 9}}
        )
        engine = Engine(config)
        recorder = TraceRecorder()
        server = engine.build_server()
        server.subscribe(recorder)
        original = server.run(engine.build_trace())

        path = str(tmp_path / "run.jsonl")
        count = recorder.save(path)
        assert count == 60

        replay_config = tiny_serving_config(
            {"name": "replay", "trace_path": path}
        )
        replayed = Engine(replay_config).serve()
        assert replayed == original
