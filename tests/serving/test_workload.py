"""Replay and diurnal-modulation tests: exactness, warping, validation."""

import numpy as np
import pytest

from repro.api.config import ArrivalsConfig, DiurnalConfig
from repro.serving.arrivals import ClosedLoopClients, PoissonArrivals
from repro.serving.traces import TraceRecord
from repro.serving.workload import DiurnalArrivals, TraceReplayArrivals

KEYS = [f"img{i}" for i in range(8)]


def make_records(times, keys=None):
    keys = keys or [KEYS[i % len(KEYS)] for i in range(len(times))]
    return tuple(
        TraceRecord(timestamp=time, key=key) for time, key in zip(times, keys)
    )


class TestTraceReplay:
    def test_preserves_times_and_keys_exactly(self):
        times = [0.25, 0.5, 1.0, 1.125]
        records = make_records(times)
        trace = TraceReplayArrivals(records=records).trace(KEYS, 4)
        assert [request.arrival_time for request in trace] == times
        assert [request.key for request in trace] == [r.key for r in records]
        assert [request.request_id for request in trace] == [0, 1, 2, 3]

    def test_is_deterministic(self):
        records = make_records([0.1, 0.2, 0.9])
        process = TraceReplayArrivals(records=records, mode="loop")
        assert process.trace(KEYS, 10) == process.trace(KEYS, 10)

    def test_speedup_divides_timestamps(self):
        records = make_records([1.0, 2.0, 4.0])
        trace = TraceReplayArrivals(records=records, speedup=4.0).trace(KEYS, 3)
        assert [request.arrival_time for request in trace] == [0.25, 0.5, 1.0]

    def test_truncate_serves_at_most_the_trace(self):
        records = make_records([0.1, 0.2, 0.3])
        trace = TraceReplayArrivals(records=records).trace(KEYS, 10)
        assert len(trace) == 3

    def test_loop_wraps_with_strictly_increasing_times(self):
        records = make_records([0.1, 0.2, 0.4])
        trace = TraceReplayArrivals(records=records, mode="loop").trace(KEYS, 11)
        assert len(trace) == 11
        times = [request.arrival_time for request in trace]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        # Keys cycle through the trace in order.
        assert [request.key for request in trace[:3]] == [r.key for r in records]
        assert [request.key for request in trace[3:6]] == [r.key for r in records]

    def test_out_of_order_records_are_sorted_stably(self):
        records = make_records([0.5, 0.1, 0.3], keys=["img2", "img0", "img1"])
        trace = TraceReplayArrivals(records=records).trace(KEYS, 3)
        assert [request.key for request in trace] == ["img0", "img1", "img2"]

    def test_unknown_trace_key_is_rejected(self):
        records = make_records([0.1, 0.2], keys=["img0", "mystery"])
        with pytest.raises(ValueError, match="mystery"):
            TraceReplayArrivals(records=records).trace(KEYS, 2)

    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            TraceReplayArrivals()
        with pytest.raises(ValueError, match="exactly one"):
            TraceReplayArrivals(trace_path="t.jsonl", records=make_records([0.1]))

    def test_rejects_bad_mode_and_speedup(self):
        records = make_records([0.1])
        with pytest.raises(ValueError, match="mode"):
            TraceReplayArrivals(records=records, mode="stretch")
        with pytest.raises(ValueError, match="speedup"):
            TraceReplayArrivals(records=records, speedup=0.0)

    def test_rejects_looping_a_zero_span_trace(self):
        records = make_records([0.5, 0.5])
        with pytest.raises(ValueError, match="zero-span"):
            TraceReplayArrivals(records=records, mode="loop").trace(KEYS, 5)


class TestDiurnalArrivals:
    def test_is_deterministic_and_preserves_keys_and_count(self):
        base = PoissonArrivals(rate_rps=500.0, seed=3)
        process = DiurnalArrivals(base=base, period_s=0.5, amplitude=0.7)
        first = process.trace(KEYS, 300)
        second = process.trace(KEYS, 300)
        assert first == second
        assert len(first) == 300
        assert [r.key for r in first] == [r.key for r in base.trace(KEYS, 300)]

    def test_times_stay_strictly_increasing(self):
        process = DiurnalArrivals(
            base=PoissonArrivals(rate_rps=2000.0, seed=1),
            period_s=0.2,
            amplitude=0.9,
            envelope=(2.0, 0.3),
        )
        times = [r.arrival_time for r in process.trace(KEYS, 500)]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))

    def test_sinusoid_concentrates_arrivals_in_the_peak_half(self):
        process = DiurnalArrivals(
            base=PoissonArrivals(rate_rps=1000.0, seed=2), period_s=1.0, amplitude=0.8
        )
        phases = np.mod([r.arrival_time for r in process.trace(KEYS, 2000)], 1.0)
        peak = int(np.sum(phases < 0.5))  # sin > 0 half of the cycle
        trough = int(np.sum(phases >= 0.5))
        assert peak > 1.5 * trough

    def test_envelope_segments_scale_local_rate(self):
        process = DiurnalArrivals(
            base=PoissonArrivals(rate_rps=1000.0, seed=4),
            period_s=1.0,
            amplitude=0.0,
            envelope=(3.0, 0.5),
        )
        phases = np.mod([r.arrival_time for r in process.trace(KEYS, 2000)], 1.0)
        busy = int(np.sum(phases < 0.5))
        quiet = int(np.sum(phases >= 0.5))
        assert busy > 3 * quiet

    def test_amplitude_zero_and_flat_envelope_is_identity_within_grid_error(self):
        base = PoissonArrivals(rate_rps=800.0, seed=5)
        process = DiurnalArrivals(base=base, period_s=0.1, amplitude=0.0)
        warped = np.array([r.arrival_time for r in process.trace(KEYS, 200)])
        original = np.array([r.arrival_time for r in base.trace(KEYS, 200)])
        assert np.allclose(warped, original, rtol=0, atol=1e-9)

    def test_extreme_quiet_envelope_never_collapses_the_tail(self):
        """Regression: the warp grid must cover the whole base span.

        A tiny envelope multiplier stretches the modulated timeline far
        beyond the base span; an undersized inversion grid used to clamp
        the tail of the trace onto one instant.
        """
        process = DiurnalArrivals(
            base=PoissonArrivals(rate_rps=100.0, seed=0),
            period_s=0.05,
            amplitude=0.0,
            envelope=(0.01,),
        )
        times = [r.arrival_time for r in process.trace(KEYS, 200)]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        # Flat 0.01 multiplier ⇒ the warp stretches the span 100x.
        base_span = PoissonArrivals(rate_rps=100.0, seed=0).trace(KEYS, 200)[-1]
        assert times[-1] == pytest.approx(100.0 * base_span.arrival_time, rel=0.01)

    def test_rate_multiplier_matches_the_formula(self):
        process = DiurnalArrivals(
            base=PoissonArrivals(rate_rps=1.0, seed=0),
            period_s=4.0,
            amplitude=0.5,
            envelope=(2.0, 1.0),
        )
        # t=1.0 is the sinusoid peak (sin(2π/4)=1) inside the first segment.
        assert process.rate_multiplier(np.array([1.0]))[0] == pytest.approx(3.0)
        # t=3.0 is the trough inside the second segment.
        assert process.rate_multiplier(np.array([3.0]))[0] == pytest.approx(0.5)

    def test_validation(self):
        base = PoissonArrivals(rate_rps=100.0, seed=0)
        with pytest.raises(ValueError, match="period_s"):
            DiurnalArrivals(base=base, period_s=0.0)
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(base=base, amplitude=1.0)
        with pytest.raises(ValueError, match="envelope"):
            DiurnalArrivals(base=base, envelope=(1.0, 0.0))
        with pytest.raises(ValueError, match="open-loop"):
            DiurnalArrivals(base=ClosedLoopClients(num_clients=2))


class TestArrivalsConfigRealismKnobs:
    def test_replay_requires_a_trace_path(self):
        with pytest.raises(ValueError, match="trace_path is required"):
            ArrivalsConfig(name="replay")

    def test_trace_path_is_replay_only(self):
        with pytest.raises(ValueError, match="only applies"):
            ArrivalsConfig(name="poisson", trace_path="t.jsonl")

    def test_replay_rejects_popularity(self):
        from repro.api.config import PopularityConfig

        with pytest.raises(ValueError, match="popularity"):
            ArrivalsConfig(
                name="replay",
                trace_path="t.jsonl",
                popularity=PopularityConfig(name="zipf"),
            )

    def test_diurnal_rejects_closed_loop(self):
        with pytest.raises(ValueError, match="open-loop"):
            ArrivalsConfig(name="closed-loop", diurnal=DiurnalConfig())

    def test_diurnal_name_points_at_the_section(self):
        with pytest.raises(ValueError, match="diurnal section"):
            ArrivalsConfig(name="diurnal")

    def test_speedup_must_be_positive(self):
        with pytest.raises(ValueError, match="speedup"):
            ArrivalsConfig(name="replay", trace_path="t.jsonl", speedup=0.0)

    def test_speedup_is_replay_only(self):
        with pytest.raises(ValueError, match="only applies"):
            ArrivalsConfig(name="poisson", speedup=5.0)

    def test_options_may_not_duplicate_dedicated_replay_fields(self):
        with pytest.raises(ValueError, match="duplicates dedicated"):
            ArrivalsConfig(
                name="replay", trace_path="t.jsonl", options={"speedup": 2.0}
            )

    def test_replay_process_parses_its_file_once(self, tmp_path):
        from repro.serving.traces import save_trace

        path = tmp_path / "once.jsonl"
        save_trace(make_records([0.1, 0.2, 0.3]), str(path))
        process = TraceReplayArrivals(trace_path=str(path))
        assert len(process.load_records()) == 3
        path.unlink()  # memoized: a second call must not re-read the file
        assert len(process.trace(KEYS, 3)) == 3

    def test_diurnal_section_round_trips_through_json(self):
        config = ArrivalsConfig(
            name="poisson",
            options={"rate_rps": 100.0},
            diurnal=DiurnalConfig(period_s=0.5, amplitude=0.3, envelope=(1.5, 0.5)),
        )
        assert ArrivalsConfig.from_dict(config.to_dict()) == config
