"""Image store, bandwidth model and read-policy tests."""

import numpy as np
import pytest

from repro.codec.progressive import ProgressiveEncoder
from repro.imaging.metrics import ssim
from repro.storage.bandwidth import StorageBandwidthModel
from repro.storage.policy import ScanReadPolicy
from repro.storage.store import ImageStore, ReadReceipt


@pytest.fixture
def store_with_image(sample_image):
    store = ImageStore(encoder=ProgressiveEncoder(quality=85))
    store.put("img0", sample_image, label=3)
    return store


class TestImageStore:
    def test_put_and_metadata(self, store_with_image):
        assert "img0" in store_with_image
        assert len(store_with_image) == 1
        assert store_with_image.metadata("img0").label == 3

    def test_full_read_returns_faithful_image(self, store_with_image, sample_image):
        image, receipt = store_with_image.read("img0")
        assert image.shape == sample_image.shape
        assert receipt.relative_read_size == pytest.approx(1.0)
        assert ssim(sample_image, image) > 0.85

    def test_partial_read_costs_fewer_bytes(self, store_with_image):
        _, full = store_with_image.read("img0")
        _, partial = store_with_image.read("img0", num_scans=1)
        assert partial.bytes_read < full.bytes_read
        assert partial.bytes_saved > 0

    def test_read_accounting_accumulates(self, store_with_image):
        store_with_image.reset_counters()
        store_with_image.read("img0", 1)
        store_with_image.read("img0", 2)
        assert store_with_image.read_count == 2
        assert store_with_image.total_bytes_read > 0

    def test_incremental_read_never_double_charges(self, store_with_image):
        encoded = store_with_image.metadata("img0").encoded
        _, first = store_with_image.read("img0", 2)
        _, top_up = store_with_image.read_additional("img0", 2, 4)
        assert first.bytes_read + top_up.bytes_read == encoded.cumulative_bytes(4)

    def test_read_additional_rejects_unreading(self, store_with_image):
        with pytest.raises(ValueError):
            store_with_image.read_additional("img0", 3, 2)

    def test_missing_key_rejected(self, store_with_image):
        with pytest.raises(KeyError):
            store_with_image.read("missing")

    def test_overwrite_updates_stored_bytes(self, sample_image):
        store = ImageStore()
        store.put("a", sample_image)
        before = store.total_bytes_stored
        store.put("a", sample_image)
        assert store.total_bytes_stored == before

    def test_mean_object_bytes(self, store_with_image):
        assert store_with_image.mean_object_bytes == store_with_image.total_bytes_stored


class TestReadReceipt:
    def test_zero_byte_encoding_has_zero_relative_read_size(self):
        """Regression: degenerate zero-byte objects used to raise ZeroDivisionError."""
        receipt = ReadReceipt(key="empty", scans_read=0, bytes_read=0, total_bytes=0)
        assert receipt.relative_read_size == 0.0
        assert receipt.bytes_saved == 0

    def test_nonzero_encoding_unaffected(self):
        receipt = ReadReceipt(key="img", scans_read=2, bytes_read=250, total_bytes=1000)
        assert receipt.relative_read_size == pytest.approx(0.25)
        assert receipt.bytes_saved == 750


class TestBandwidthModel:
    def test_transfer_time_scales_with_bytes(self):
        model = StorageBandwidthModel(link_gbps=10.0)
        small = model.estimate(10_000)
        large = model.estimate(10_000_000)
        assert large.seconds > small.seconds

    def test_known_transfer_time(self):
        model = StorageBandwidthModel(link_gbps=8.0, per_request_latency_s=0.0)
        estimate = model.estimate(1_000_000_000)  # 1 GB over 1 GB/s
        assert estimate.seconds == pytest.approx(1.0)

    def test_cost_includes_egress_and_requests(self):
        model = StorageBandwidthModel(dollars_per_gb=0.1, dollars_per_1k_requests=1.0)
        estimate = model.estimate(2_000_000_000, num_requests=1000)
        assert estimate.dollars == pytest.approx(0.2 + 1.0)

    def test_savings_relative(self):
        model = StorageBandwidthModel()
        savings = model.savings(baseline_bytes=1000, observed_bytes=700)
        assert savings["relative_bytes_saved"] == pytest.approx(0.3)
        assert savings["bytes_saved"] == 300

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            StorageBandwidthModel(link_gbps=0.0)
        with pytest.raises(ValueError):
            StorageBandwidthModel().estimate(-1)
        with pytest.raises(ValueError):
            StorageBandwidthModel().savings(0, 0)


class TestScanReadPolicy:
    def test_no_threshold_reads_everything(self, encoded_image):
        policy = ScanReadPolicy()
        assert policy.scans_for(encoded_image, 64) == encoded_image.num_scans

    def test_low_threshold_reads_less_than_high_threshold(self, encoded_image):
        relaxed = ScanReadPolicy(ssim_thresholds={64: 0.5})
        strict = ScanReadPolicy(ssim_thresholds={64: 0.999})
        assert relaxed.scans_for(encoded_image, 64) <= strict.scans_for(encoded_image, 64)

    def test_threshold_is_respected(self, encoded_image):
        from repro.imaging.resize import resize

        threshold = 0.96
        policy = ScanReadPolicy(ssim_thresholds={64: threshold})
        scans = policy.scans_for(encoded_image, 64)
        reference = resize(encoded_image.decode(), (64, 64))
        achieved = ssim(reference, resize(encoded_image.decode(scans), (64, 64)))
        assert achieved >= threshold or scans == encoded_image.num_scans

    def test_cache_avoids_recomputation(self, encoded_image):
        policy = ScanReadPolicy(ssim_thresholds={64: 0.97})
        first = policy.scans_for(encoded_image, 64, key="k")
        assert ("k", 64) in policy.cache
        assert policy.scans_for(encoded_image, 64, key="k") == first

    def test_expected_relative_read(self, encoded_image):
        policy = ScanReadPolicy(ssim_thresholds={64: 0.9})
        value = policy.expected_relative_read([encoded_image], 64)
        assert 0.0 < value <= 1.0
        with pytest.raises(ValueError):
            policy.expected_relative_read([], 64)
