"""Accuracy surrogate tests: anchors, interpolation, quality model, per-image oracle."""

import numpy as np
import pytest

from repro.surrogate.anchors import CROP_RATIOS, RESOLUTIONS, get_anchors
from repro.surrogate.per_image import PerImageOracle, SimulatedScaleModel
from repro.surrogate.quality import QualityDegradationModel
from repro.surrogate.static_accuracy import StaticAccuracyModel


class TestAnchors:
    def test_all_four_surfaces_available(self):
        for dataset in ("imagenet", "cars"):
            for model in ("resnet18", "resnet50"):
                anchors = get_anchors(dataset, model)
                assert anchors.table().shape == (len(CROP_RATIOS), len(RESOLUTIONS))

    def test_exact_lookup_matches_paper_values(self):
        assert get_anchors("imagenet", "resnet18").at(0.75, 224) == 69.5
        assert get_anchors("imagenet", "resnet50").at(0.75, 280) == 76.0
        assert get_anchors("cars", "resnet18").at(0.25, 112) == 63.2
        assert get_anchors("cars", "resnet50").at(0.56, 448) == 87.6

    def test_unknown_keys_rejected(self):
        with pytest.raises(KeyError):
            get_anchors("cifar", "resnet18")
        with pytest.raises(KeyError):
            get_anchors("imagenet", "resnet18").at(0.5, 224)
        with pytest.raises(ValueError):
            get_anchors("imagenet", "resnet18").at(0.75, 200)

    def test_resnet50_dominates_resnet18(self):
        """At every anchored point the larger model is at least as accurate."""
        small = get_anchors("imagenet", "resnet18").table()
        large = get_anchors("imagenet", "resnet50").table()
        assert (large >= small).all()


class TestStaticAccuracyModel:
    @pytest.fixture(scope="class")
    def model(self):
        return StaticAccuracyModel("imagenet", "resnet18")

    def test_reproduces_anchors_exactly(self, model):
        anchors = get_anchors("imagenet", "resnet18")
        for crop in CROP_RATIOS:
            for resolution in RESOLUTIONS:
                assert model.accuracy(resolution, crop) == pytest.approx(
                    anchors.at(crop, resolution)
                )

    def test_interpolation_between_anchored_resolutions(self, model):
        value = model.accuracy(252, 0.75)
        assert model.accuracy(224, 0.75) <= value <= model.accuracy(280, 0.75) + 0.1

    def test_non_monotone_resolution_curve(self, model):
        """The train/test resolution discrepancy: accuracy peaks then declines."""
        curve = model.accuracy_curve(0.75)
        assert max(curve, key=curve.get) == 280
        assert curve[448] < curve[280]

    def test_smaller_crops_favor_lower_resolutions(self, model):
        best_small_crop, _ = model.best_static(0.25)
        best_large_crop, _ = model.best_static(0.75)
        assert best_small_crop < best_large_crop

    def test_full_crop_curve_synthesized(self, model):
        """The 100% crop (Fig 8d) favours even higher resolutions than 75%."""
        curve = model.accuracy_curve(1.0)
        assert max(curve, key=curve.get) >= 280
        assert curve[112] < model.accuracy_curve(0.75)[112]

    def test_intermediate_crop_blending(self, model):
        mid = model.accuracy(224, 0.65)
        low = model.accuracy(224, 0.56)
        high = model.accuracy(224, 0.75)
        assert min(low, high) - 1e-9 <= mid <= max(low, high) + 1e-9

    def test_invalid_arguments_rejected(self, model):
        with pytest.raises(ValueError):
            model.accuracy(0, 0.75)
        with pytest.raises(ValueError):
            model.accuracy(224, 0.0)


class TestQualityDegradation:
    def test_no_drop_at_full_quality(self):
        quality = QualityDegradationModel("imagenet")
        assert quality.accuracy_drop(224, 1.0) == 0.0

    def test_drop_increases_as_quality_falls(self):
        quality = QualityDegradationModel("imagenet")
        assert quality.accuracy_drop(224, 0.94) > quality.accuracy_drop(224, 0.98) > 0.0

    def test_lower_resolutions_degrade_faster(self):
        """Fig 6: accuracy at low resolution is more sensitive to lost data."""
        quality = QualityDegradationModel("imagenet")
        assert quality.accuracy_drop(112, 0.95) > quality.accuracy_drop(448, 0.95)

    def test_cars_is_more_tolerant_than_imagenet(self):
        """Fig 6 / Tables III-IV: the shape-dominant dataset tolerates low fidelity."""
        imagenet = QualityDegradationModel("imagenet")
        cars = QualityDegradationModel("cars")
        assert cars.accuracy_drop(224, 0.94) < imagenet.accuracy_drop(224, 0.94)

    def test_inverse_mapping_consistent(self):
        quality = QualityDegradationModel("imagenet")
        ssim = quality.max_ssim_loss_for_drop(224, 0.05)
        assert quality.accuracy_drop(224, ssim) <= 0.05 + 1e-9

    def test_invalid_ssim_rejected(self):
        with pytest.raises(ValueError):
            QualityDegradationModel("imagenet").accuracy_drop(224, 1.5)


class TestPerImageOracle:
    @pytest.fixture(scope="class")
    def oracle(self):
        return PerImageOracle("imagenet", "resnet18", num_images=800, seed=0)

    def test_probability_matrix_shape_and_range(self, oracle):
        matrix = oracle.probability_matrix(RESOLUTIONS, 0.75)
        assert matrix.shape == (800, len(RESOLUTIONS))
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_aggregate_tracks_static_surface(self, oracle):
        """Averaging per-image probabilities approximates the published accuracy."""
        static = StaticAccuracyModel("imagenet", "resnet18")
        for resolution in (168, 224, 280):
            aggregate = oracle.dataset_accuracy(resolution, 0.75)
            assert aggregate == pytest.approx(static.accuracy(resolution, 0.75), abs=4.0)

    def test_large_objects_prefer_lower_resolutions(self, oracle):
        """The object-scale mechanism: large-appearing objects peak earlier."""
        large = max(oracle.profiles, key=lambda p: p.relative_scale)
        small = min(oracle.profiles, key=lambda p: p.relative_scale)
        resolutions = np.array(RESOLUTIONS, dtype=float)
        large_curve = [oracle.correct_probability(large, r, 0.75) for r in resolutions]
        small_curve = [oracle.correct_probability(small, r, 0.75) for r in resolutions]
        large_peak = resolutions[int(np.argmax(large_curve))]
        small_peak = resolutions[int(np.argmax(small_curve))]
        assert large_peak <= small_peak

    def test_lower_quality_never_increases_probability(self, oracle):
        profile = oracle.profiles[0]
        assert oracle.correct_probability(profile, 224, 0.75, ssim=0.94) <= (
            oracle.correct_probability(profile, 224, 0.75, ssim=1.0) + 1e-12
        )

    def test_sample_correctness_is_binary(self, oracle):
        matrix = oracle.probability_matrix((224,), 0.75)
        draws = oracle.sample_correctness(matrix, seed=0)
        assert set(np.unique(draws)).issubset({0.0, 1.0})

    def test_rejects_empty_oracle(self):
        with pytest.raises(ValueError):
            PerImageOracle("imagenet", "resnet18", num_images=0)


class TestSimulatedScaleModel:
    def test_zero_noise_recovers_true_probabilities(self):
        scale_model = SimulatedScaleModel(logit_noise=0.0)
        probabilities = np.array([[0.2, 0.9, 0.5]])
        np.testing.assert_allclose(
            scale_model.predict_probabilities(probabilities), probabilities, atol=1e-6
        )

    def test_choices_prefer_cheaper_resolution_on_ties(self):
        scale_model = SimulatedScaleModel(logit_noise=0.0)
        probabilities = np.array([[0.9, 0.9, 0.9]])
        flops = np.array([1.0, 2.0, 3.0])
        choice = scale_model.choose_resolutions(probabilities, (112, 224, 448), flops)
        assert choice[0] == 0

    def test_choices_follow_clear_winner(self):
        scale_model = SimulatedScaleModel(logit_noise=0.0)
        probabilities = np.array([[0.1, 0.2, 0.95]])
        choice = scale_model.choose_resolutions(probabilities, (112, 224, 448))
        assert choice[0] == 2

    def test_noise_must_be_non_negative(self):
        with pytest.raises(ValueError):
            SimulatedScaleModel(logit_noise=-1.0)

    def test_dynamic_selection_beats_worst_static(self):
        """Even a noisy scale model must outperform the worst fixed resolution."""
        oracle = PerImageOracle("imagenet", "resnet18", num_images=600, seed=1)
        scale_model = SimulatedScaleModel(logit_noise=0.3, seed=1)
        probabilities = oracle.probability_matrix(RESOLUTIONS, 0.25)
        choices = scale_model.choose_resolutions(probabilities, RESOLUTIONS)
        dynamic = probabilities[np.arange(len(choices)), choices].mean()
        worst_static = probabilities.mean(axis=0).min()
        assert dynamic > worst_static
