"""Grid expansion: stable cell ordering, derived seeds, validation."""

import pytest

from repro.sweep.grid import SweepCell, cell_seed, expand_grid


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed(0, 0) == cell_seed(0, 0)
        assert cell_seed(7, 12) == cell_seed(7, 12)

    def test_distinct_across_cells_and_bases(self):
        seeds = {cell_seed(base, index) for base in range(4) for index in range(64)}
        assert len(seeds) == 4 * 64

    def test_positive_and_63_bit(self):
        for index in range(100):
            seed = cell_seed(3, index)
            assert 0 <= seed < 2**63


class TestExpandGrid:
    def test_empty_grid_raises_legacy_message(self):
        with pytest.raises(ValueError, match="no sweep grid"):
            expand_grid({})

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="non-empty list"):
            expand_grid({"a.b": []})

    def test_scalar_values_rejected(self):
        with pytest.raises(ValueError, match="non-empty list"):
            expand_grid({"a.b": 3})

    def test_insertion_order_does_not_matter(self):
        forward = expand_grid({"a.x": [1, 2], "b.y": [3, 4]})
        backward = expand_grid({"b.y": [3, 4], "a.x": [1, 2]})
        assert forward == backward

    def test_last_sorted_path_varies_fastest(self):
        cells = expand_grid({"b.y": [3, 4], "a.x": [1, 2]})
        assert [cell.overrides for cell in cells] == [
            {"a.x": 1, "b.y": 3},
            {"a.x": 1, "b.y": 4},
            {"a.x": 2, "b.y": 3},
            {"a.x": 2, "b.y": 4},
        ]
        assert [cell.index for cell in cells] == [0, 1, 2, 3]

    def test_cells_carry_derived_seeds(self):
        cells = expand_grid({"a.x": [1, 2]}, base_seed=9)
        assert [cell.seed for cell in cells] == [cell_seed(9, 0), cell_seed(9, 1)]

    def test_single_dimension_single_value(self):
        cells = expand_grid({"a.x": [5]})
        assert cells == [SweepCell(index=0, overrides={"a.x": 5}, seed=cell_seed(0, 0))]
