"""The sweep analysis stage: objectives, frontiers, winners, persistence."""

import json

import pytest

from repro.sweep.analysis import (
    DEFAULT_OBJECTIVES,
    Objective,
    default_objectives,
    format_analysis,
    pareto_analysis,
    write_pareto,
)
from repro.sweep.results import combine_rows


def make_table(cells):
    """Rows from ``(p99, drop_rate, dollars, admission)`` tuples."""
    rows = []
    for index, (p99, drop, dollars, admission) in enumerate(cells):
        rows.append(
            {
                "cell.index": index,
                "cell.seed": index,
                "serving.admission.name": admission,
                "report.p99_latency_ms": p99,
                "report.drop_rate": drop,
                "report.transfer_dollars": dollars,
            }
        )
    return combine_rows(rows)


class TestObjective:
    def test_direction_validated(self):
        with pytest.raises(ValueError, match="min.*max"):
            Objective("report.p99_latency_ms", "down")

    def test_column_required(self):
        with pytest.raises(ValueError, match="non-empty"):
            Objective("")

    def test_better_respects_direction(self):
        assert Objective("c", "min").better(1.0, 2.0)
        assert not Objective("c", "min").better(2.0, 1.0)
        assert Objective("c", "max").better(2.0, 1.0)

    def test_defaults_match_the_declared_triple(self):
        assert tuple(
            (objective.column, objective.direction)
            for objective in default_objectives()
        ) == DEFAULT_OBJECTIVES


class TestParetoAnalysis:
    def test_pairwise_frontiers_cover_every_objective_pair(self):
        table = make_table([(10.0, 0.0, 1.0, "a"), (20.0, 0.1, 2.0, "b")])
        analysis = pareto_analysis(table)
        pairs = {
            (frontier["cost"]["column"], frontier["value"]["column"])
            for frontier in analysis["frontiers"]
        }
        assert len(pairs) == 3  # C(3, 2) over the default triple

    def test_dominated_cells_excluded_from_frontier(self):
        # Cell 1 is worse on both axes of the (p99, drop) plane.
        table = make_table([(10.0, 0.0, 1.0, "a"), (20.0, 0.1, 0.5, "b")])
        analysis = pareto_analysis(
            table,
            [Objective("report.p99_latency_ms"), Objective("report.drop_rate")],
        )
        [frontier] = analysis["frontiers"]
        assert [point["cell_index"] for point in frontier["points"]] == [0]

    def test_tradeoff_cells_both_on_frontier(self):
        table = make_table([(10.0, 0.2, 1.0, "a"), (20.0, 0.0, 1.0, "b")])
        analysis = pareto_analysis(
            table,
            [Objective("report.p99_latency_ms"), Objective("report.drop_rate")],
        )
        [frontier] = analysis["frontiers"]
        assert [point["cell_index"] for point in frontier["points"]] == [0, 1]

    def test_max_direction_flips_the_axis(self):
        table = make_table([(10.0, 0.2, 1.0, "a"), (20.0, 0.0, 1.0, "b")])
        analysis = pareto_analysis(
            table,
            [
                Objective("report.p99_latency_ms", "max"),
                Objective("report.drop_rate", "max"),
            ],
        )
        [frontier] = analysis["frontiers"]
        # Maximizing both, the same trade-off pair survives (a dominated-in-max
        # cell would be lower on both axes); sort order follows the flipped
        # cost axis, so the higher-p99 cell leads.
        assert [point["cell_index"] for point in frontier["points"]] == [1, 0]

    def test_non_numeric_cells_skipped_and_counted(self):
        table = make_table([(10.0, 0.0, 1.0, "a"), (None, 0.1, 2.0, "b")])
        analysis = pareto_analysis(
            table,
            [Objective("report.p99_latency_ms"), Objective("report.drop_rate")],
        )
        [frontier] = analysis["frontiers"]
        assert frontier["cells_considered"] == 1
        assert frontier["cells_skipped"] == 1

    def test_single_cell_degenerate_frontier(self):
        table = make_table([(10.0, 0.0, 1.0, "a")])
        analysis = pareto_analysis(table)
        for frontier in analysis["frontiers"]:
            assert [point["cell_index"] for point in frontier["points"]] == [0]

    def test_winner_per_dimension_groups_values(self):
        table = make_table(
            [
                (10.0, 0.0, 1.0, "ewma"),
                (30.0, 0.0, 1.0, "ewma"),
                (20.0, 0.0, 1.0, "always-admit"),
            ]
        )
        analysis = pareto_analysis(table, [Objective("report.p99_latency_ms")])
        [winner] = analysis["winners"]
        assert winner["best"]["cell_index"] == 0
        dimension = winner["by_dimension"]["serving.admission.name"]
        assert dimension["winner"] == "ewma"
        by_value = {entry["value"]: entry for entry in dimension["per_value"]}
        assert by_value["ewma"]["cells"] == 2
        assert by_value["ewma"]["best"] == 10.0
        assert by_value["ewma"]["mean"] == pytest.approx(20.0)

    def test_winner_with_no_usable_cells(self):
        table = make_table([(None, 0.0, 1.0, "a")])
        analysis = pareto_analysis(table, [Objective("report.p99_latency_ms")])
        [winner] = analysis["winners"]
        assert winner["best"] is None
        assert winner["cells_skipped"] == 1


class TestOutput:
    def test_write_pareto_roundtrips_through_json(self, tmp_path):
        table = make_table([(10.0, 0.0, 1.0, "a"), (20.0, 0.1, 2.0, "b")])
        analysis = pareto_analysis(table)
        path = write_pareto(analysis, tmp_path)
        assert json.loads(path.read_text()) == json.loads(json.dumps(analysis))

    def test_format_analysis_is_deterministic_text(self):
        table = make_table([(10.0, 0.0, 1.0, "a"), (20.0, 0.1, 2.0, "b")])
        analysis = pareto_analysis(table)
        text = format_analysis(analysis)
        assert text == format_analysis(pareto_analysis(table))
        assert "objectives" in text and "winner" in text
        assert "report.p99_latency_ms" in text
