"""The columnar results pipeline: flattening, combine/split, cell files."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving.metrics import SLOReport
from repro.sweep.results import (
    ResultsTable,
    cell_path,
    cell_payload,
    cell_row,
    combine_cells,
    combine_output_dir,
    combine_rows,
    flatten_report,
    load_cell,
    load_table,
    split_table,
    write_cell,
    write_table,
)

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


def make_report(**overrides) -> SLOReport:
    """A small, fully-populated SLO report for table plumbing tests."""
    fields = dict(
        num_requests=10,
        duration_s=0.5,
        throughput_rps=20.0,
        mean_latency_ms=4.0,
        p50_latency_ms=3.5,
        p95_latency_ms=7.0,
        p99_latency_ms=9.0,
        mean_queue_wait_ms=1.0,
        mean_batch_size=2.0,
        accuracy=0.75,
        bytes_from_store=1000,
        bytes_from_cache=500,
        baseline_bytes=3000,
        bytes_saved=1500,
        relative_bytes_saved=0.5,
        transfer_seconds=0.01,
        transfer_dollars=1e-6,
        cache_hit_rate=0.4,
        degraded_requests=1,
        resolution_histogram={24: 4, 48: 6},
        dropped_requests=2,
    )
    fields.update(overrides)
    return SLOReport(**fields)


@st.composite
def slo_reports(draw):
    served = draw(st.integers(min_value=1, max_value=500))
    dropped = draw(st.integers(min_value=0, max_value=100))
    latency = draw(st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
    return make_report(
        num_requests=served,
        dropped_requests=dropped,
        p99_latency_ms=latency,
        throughput_rps=draw(st.floats(min_value=1.0, max_value=1e4, allow_nan=False)),
        transfer_dollars=draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    )


class TestFlattenReport:
    def test_scalar_fields_become_report_columns(self):
        columns = flatten_report(make_report())
        assert columns["report.num_requests"] == 10
        assert columns["report.p99_latency_ms"] == 9.0
        assert columns["report.kind"] == "slo"

    def test_nested_dicts_flatten_to_dotted_columns(self):
        columns = flatten_report(make_report())
        assert columns["report.resolution_histogram.24"] == 4
        assert columns["report.resolution_histogram.48"] == 6

    def test_derived_drop_rate_materialized(self):
        columns = flatten_report(make_report(num_requests=8, dropped_requests=2))
        assert columns["report.drop_rate"] == pytest.approx(0.2)

    def test_fleet_report_gets_unified_column_names(self):
        from repro.serving.fleet import FleetReport, ShardReport

        shard = ShardReport(shard_id=0, num_requests=10, report=make_report())
        fleet = FleetReport(
            num_shards=1,
            shards=(shard,),
            fleet=make_report(),
            load_imbalance=1.0,
            idle_shards=0,
        )
        columns = flatten_report(fleet)
        assert columns["report.kind"] == "fleet"
        # Delegated metrics surface under the same names an SLO run uses,
        # transfer_dollars included (it has no delegate property).
        assert columns["report.p99_latency_ms"] == 9.0
        assert columns["report.transfer_dollars"] == pytest.approx(1e-6)


class TestCombineSplit:
    def _payloads(self, reports):
        return [
            cell_payload(index, 1000 + index, {"a.x": index}, report)
            for index, report in enumerate(reports)
        ]

    def test_combine_orders_columns_canonically(self):
        table = combine_cells(self._payloads([make_report(), make_report()]))
        assert table.columns[0] == "cell.index"
        assert table.columns[1] == "cell.seed"
        assert table.columns[2] == "a.x"
        assert all(column.startswith("report.") for column in table.columns[3:])
        assert table.override_columns() == ["a.x"]

    def test_combine_sorts_rows_by_cell_index(self):
        payloads = self._payloads([make_report(), make_report()])
        table = combine_cells(reversed(payloads))
        assert [row["cell.index"] for row in table.rows] == [0, 1]

    def test_missing_columns_normalized_to_none(self):
        rows = [{"cell.index": 0, "a.x": 1}, {"cell.index": 1, "report.extra": 5}]
        table = combine_rows(rows)
        assert table.rows[0]["report.extra"] is None
        assert table.rows[1]["a.x"] is None

    def test_column_values_unknown_column_raises(self):
        table = combine_rows([{"cell.index": 0}])
        with pytest.raises(KeyError, match="no column"):
            table.column_values("nope")

    @given(st.lists(slo_reports(), min_size=1, max_size=6))
    @settings(**_SETTINGS)
    def test_combine_split_roundtrip(self, reports):
        table = combine_cells(self._payloads(reports))
        assert combine_rows(split_table(table)) == table

    @given(st.lists(slo_reports(), min_size=1, max_size=6), st.randoms())
    @settings(**_SETTINGS)
    def test_combine_is_order_invariant(self, reports, random):
        payloads = self._payloads(reports)
        shuffled = list(payloads)
        random.shuffle(shuffled)
        assert combine_cells(shuffled) == combine_cells(payloads)


class TestFiles:
    def test_write_cell_then_load_cell_roundtrip(self, tmp_path):
        payload = cell_payload(3, 99, {"a.x": 1}, make_report())
        path = write_cell(tmp_path, payload)
        assert path == cell_path(tmp_path, 3)
        assert load_cell(path) == json.loads(json.dumps(payload))

    def test_load_cell_tolerates_garbage(self, tmp_path):
        path = tmp_path / "cell_00000.json"
        path.write_text("{not json")
        assert load_cell(path) is None
        path.write_text('{"valid": "json", "wrong": "shape"}')
        assert load_cell(path) is None
        assert load_cell(tmp_path / "missing.json") is None

    def test_combine_output_dir_without_cells_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="run the sweep first"):
            combine_output_dir(tmp_path)

    def test_write_then_load_table_roundtrip(self, tmp_path):
        payloads = [
            cell_payload(index, index, {"a.x": index}, make_report())
            for index in range(3)
        ]
        for payload in payloads:
            write_cell(tmp_path, payload)
        table = combine_output_dir(tmp_path)
        paths = write_table(table, tmp_path)
        assert paths["csv"].exists() and paths["jsonl"].exists()
        assert load_table(tmp_path) == table

    def test_load_table_before_combine_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="combine stage"):
            load_table(tmp_path)

    def test_csv_has_header_plus_one_line_per_cell(self, tmp_path):
        table = combine_cells(
            [cell_payload(index, index, {"a.x": index}, make_report()) for index in range(2)]
        )
        paths = write_table(table, tmp_path)
        lines = paths["csv"].read_text().strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("cell.index,cell.seed,a.x,")


class TestResultsTableCells:
    def test_list_values_become_json_strings(self):
        row = cell_row(cell_payload(0, 0, {"serving.resolutions": [24, 48]}, make_report()))
        assert row["serving.resolutions"] == "[24,48]"

    def test_dict_values_become_json_strings(self):
        row = cell_row(cell_payload(0, 0, {"serving.cache": {"name": "scan-lru"}}, make_report()))
        assert row["serving.cache"] == '{"name":"scan-lru"}'
