"""SweepRunner: serial parity, pool equivalence, resume, shared-store rebuild."""

import itertools
import json

import pytest

from repro.api import Engine, EngineConfig
from repro.api.config import (
    ArrivalsConfig,
    BackboneConfig,
    CacheConfig,
    PolicyConfig,
    ServingConfig,
    StoreConfig,
)
from repro.api.engine import SweepPoint
from repro.sweep.results import cell_path, combine_output_dir, load_cells
from repro.sweep.runner import SweepRunner


def sweep_config(**engine_kwargs) -> EngineConfig:
    """A small, fast serving scenario for sweep orchestration tests."""
    return EngineConfig(
        resolutions=(24, 32, 48),
        scale_resolution=24,
        store=StoreConfig(
            profile="imagenet-like",
            overrides={
                "name": "sweep-test",
                "num_classes": 4,
                "storage_resolution_mean": 96,
                "storage_resolution_std": 10,
            },
            num_images=8,
            seed=3,
        ),
        backbone=BackboneConfig(
            name="resnet-tiny", options={"num_classes": 4, "base_width": 4, "seed": 0}
        ),
        policy=PolicyConfig(name="static", resolution=32),
        ssim_thresholds={24: 0.9, 32: 0.92, 48: 0.95},
        serving=ServingConfig(
            arrivals=ArrivalsConfig(
                name="poisson", options={"rate_rps": 500.0, "seed": 5, "zipf_alpha": 1.0}
            ),
            num_requests=24,
            cache=CacheConfig(capacity_bytes=120_000),
        ),
        **engine_kwargs,
    )


GRID = {"serving.cache.capacity_bytes": [5_000, 120_000]}


def legacy_sweep(engine: Engine, grid: dict) -> list[SweepPoint]:
    """The pre-runner serial loop, verbatim, as the parity oracle."""
    paths = sorted(grid)
    shared_store = (
        None if any(path.split(".")[0] == "store" for path in paths)
        else engine.build_store()
    )
    shared_backbone = (
        None if any(path.split(".")[0] == "backbone" for path in paths)
        else engine.build_backbone()
    )
    points = []
    for values in itertools.product(*(grid[path] for path in paths)):
        overrides = dict(zip(paths, values))
        cell = Engine(
            engine.config.with_overrides(overrides),
            store=shared_store,
            backbone=shared_backbone,
        )
        points.append(SweepPoint(overrides=overrides, report=cell.serve()))
    return points


class TestSerialParity:
    def test_matches_legacy_loop_exactly(self):
        engine = Engine(sweep_config())
        assert engine.sweep(GRID) == legacy_sweep(Engine(sweep_config()), GRID)

    def test_engine_sweep_defaults_to_config_section(self):
        config = sweep_config(sweep=dict(GRID))
        points = Engine(config).sweep()
        assert [point.overrides for point in points] == [
            {"serving.cache.capacity_bytes": 5_000},
            {"serving.cache.capacity_bytes": 120_000},
        ]

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError, match="no sweep grid"):
            Engine(sweep_config()).sweep({})

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            SweepRunner(Engine(sweep_config()), GRID, workers=0)


class TestPoolEquivalence:
    def test_parallel_points_equal_serial_points(self):
        serial = Engine(sweep_config()).sweep(GRID, workers=1)
        parallel = Engine(sweep_config()).sweep(GRID, workers=2)
        assert parallel == serial

    def test_store_sweep_rebuilds_inside_workers(self):
        # Sweeping store.* paths disables the shared-store fast path; under
        # the pool the store must be rebuilt per cell inside the workers
        # (never pickled from the parent), and each cell must reflect its
        # own store.
        grid = {"store.num_images": [6, 8]}
        serial = Engine(sweep_config()).sweep(grid, workers=1)
        parallel = Engine(sweep_config()).sweep(grid, workers=2)
        assert parallel == serial
        sizes = {point.report.baseline_bytes for point in parallel}
        assert len(sizes) == 2  # different stores produce different bytes

    def test_parallel_combined_table_matches_serial(self, tmp_path):
        Engine(sweep_config()).sweep(GRID, workers=1, output_dir=tmp_path / "serial")
        Engine(sweep_config()).sweep(GRID, workers=2, output_dir=tmp_path / "pool")
        serial = combine_output_dir(tmp_path / "serial")
        pool = combine_output_dir(tmp_path / "pool")
        assert pool == serial


class TestResume:
    def test_cells_persisted_once_per_grid_point(self, tmp_path):
        Engine(sweep_config()).sweep(GRID, output_dir=tmp_path)
        payloads = load_cells(tmp_path)
        assert [payload["cell_index"] for payload in payloads] == [0, 1]

    def test_resume_skips_completed_cells(self, tmp_path):
        first = Engine(sweep_config()).sweep(GRID, output_dir=tmp_path)
        kept = cell_path(tmp_path, 0)
        stamp = kept.stat().st_mtime_ns
        cell_path(tmp_path, 1).unlink()
        second = Engine(sweep_config()).sweep(GRID, output_dir=tmp_path)
        assert second == first
        # The surviving cell was reused, not recomputed.
        assert kept.stat().st_mtime_ns == stamp
        assert cell_path(tmp_path, 1).exists()

    def test_resume_from_fully_complete_directory_runs_nothing(self, tmp_path):
        first = Engine(sweep_config()).sweep(GRID, output_dir=tmp_path)
        runner = SweepRunner(Engine(sweep_config()), GRID, output_dir=tmp_path)
        runner._run_serial = runner._run_pool = None  # any execution would blow up
        assert runner.run() == first

    def test_foreign_cells_rejected(self, tmp_path):
        Engine(sweep_config()).sweep(GRID, output_dir=tmp_path)
        path = cell_path(tmp_path, 0)
        payload = json.loads(path.read_text())
        payload["overrides"] = {"serving.num_workers": 4}
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="different grid"):
            Engine(sweep_config()).sweep(GRID, output_dir=tmp_path)

    def test_corrupt_cell_file_is_recomputed(self, tmp_path):
        first = Engine(sweep_config()).sweep(GRID, output_dir=tmp_path)
        cell_path(tmp_path, 0).write_text("{truncated")
        second = Engine(sweep_config()).sweep(GRID, output_dir=tmp_path)
        assert second == first
